"""Per-function summaries: the facts the interprocedural rules combine.

A :class:`FunctionSummary` is a flow-insensitive digest of one function
body — which parameters reach a versioned-matrix row write, which locals
hold freshly created shared-memory owners and whether they are handed
off, which calls can block, which loops are seqlock retry loops, which
RNG streams are rooted in a literal.  The deep rules never re-walk a
callee body at a call site; they consult the callee's summary, and
:class:`Summaries` closes the transitive facts (sink parameters, closing
parameters, blocking reachability) with fixpoint worklists over the call
graph.

Taint vocabulary (RL008)
------------------------
Two kinds of value carry versioned-matrix taint:

* ``obj`` — a matrix *object* exposing ``.array`` and the seqlock bracket
  methods: the result of any call with a truthy ``versioned=`` keyword
  (``SharedMatrix(...)``, ``pool.matrix(...)``), an ``AttachedMatrix``
  construction, or a ``state.matrices[...]`` lookup;
* ``arr`` — a bare numpy view of such a matrix: an ``x.array`` alias of a
  tainted object, or a worker-side ``state.matrix(name)`` accessor call
  (one argument, no keywords — creation calls carry shape arguments).

Attribute taint is scoped *per class*: ``self._dist`` is tainted inside
``ShardedRoutingService`` (whose ``_resize_matrices`` binds it to a
``versioned=True`` matrix) but not inside the serial ``RoutingService``,
whose ``_dist`` is a private numpy array.  Inheritance is deliberately
not blurred across classes — the runtime sanitizer covers the dynamic
dispatch the static layer cannot see.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from ..lint.engine import FileContext
from ..lint.rules import SeqlockBracketRule, _method_call
from .callgraph import FunctionInfo, Project

__all__ = [
    "BlockingCall",
    "CallSite",
    "CreationSite",
    "FunctionSummary",
    "RngCall",
    "Summaries",
    "WriteSite",
]

#: Receivers whose ``.get(...)`` is a blocking queue read, not a dict
#: lookup: bare/suffixed ``q``/``qs`` names and anything called ``queue``.
_QUEUEISH_RE = re.compile(r"(^|\.|_)(task_|result_|out_|work_)?qs?$|queue", re.IGNORECASE)

#: Constructor / factory names whose result owns a shared-memory segment.
_SHM_CTORS = frozenset({"SharedCSR", "SharedMatrix", "SharedDirectory", "SharedMemory"})

#: repro.rng entry points a literal seed must never be fed from library code.
_RNG_FUNCS = frozenset({"ensure_rng", "derive_seed", "spawn"})


@dataclass
class WriteSite:
    """One subscript store: ``root.array[i] = ...`` / ``alias[i] = ...`` /
    ``name[i] = ...`` — classified by what the *root* expression holds."""

    node: ast.stmt
    root: str  # unparsed root expression ("att", "dest", "self._dist")
    kind: str  # "obj" (matrix object's .array) or "arr" (bare array name)
    bracketed: bool  # inside a begin_row_write try with end in finally


@dataclass
class CallSite:
    """One call expression, with its resolution and protocol context."""

    call: ast.Call
    callees: "list[FunctionInfo]"
    bracketed: bool
    in_retry_loop: bool


@dataclass
class BlockingCall:
    """A call that can park the calling process (sleep, queue get, ...)."""

    node: ast.Call
    label: str


@dataclass
class RngCall:
    """A repro.rng construction whose seed argument is a literal."""

    node: ast.Call
    func: str
    seed: object  # the literal value (int or None)


@dataclass
class CreationSite:
    """A shared-memory owner bound to a local name (RL010 tracks these)."""

    node: ast.Call
    name: str  # the local the owner is bound to
    what: str  # ".share()" or the constructor name


@dataclass
class FunctionSummary:
    """Everything the deep rules need to know about one function."""

    fi: FunctionInfo
    params: "list[str]"
    writes: "list[WriteSite]" = field(default_factory=list)
    calls: "list[CallSite]" = field(default_factory=list)
    retry_loops: "list[ast.stmt]" = field(default_factory=list)
    blocking: "list[BlockingCall]" = field(default_factory=list)
    rng_calls: "list[RngCall]" = field(default_factory=list)
    creations: "list[CreationSite]" = field(default_factory=list)
    handled_names: "set[str]" = field(default_factory=set)
    local_obj: "set[str]" = field(default_factory=set)  # obj-tainted expressions
    local_arr: "set[str]" = field(default_factory=set)  # arr-tainted expressions
    array_alias: "dict[str, str]" = field(default_factory=dict)  # alias -> obj root
    attr_assigns: "list[tuple[str, str]]" = field(default_factory=list)  # (attr, kind)
    self_name: "str | None" = None
    # Fixpoint results (filled by Summaries):
    sink_params: "dict[int, str]" = field(default_factory=dict)  # index -> kind
    handling_params: "set[int]" = field(default_factory=set)  # close/store/return
    blocks: "str | None" = None  # label chain when this function can block


def _truthy_versioned(call: ast.Call) -> bool:
    """Does *call* carry a ``versioned=`` keyword that may be true?"""
    for kw in call.keywords:
        if kw.arg == "versioned":
            if isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
            return True  # versioned=<expr>: assume it can be true
    return False


def _call_name(call: ast.Call) -> "str | None":
    """The called bare/attribute name (``foo`` for both ``foo()`` and ``x.foo()``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _contains_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _rng_bindings(ctx: FileContext) -> "tuple[set[str], set[str]]":
    """Names bound to repro.rng functions / to the rng module in *ctx*."""
    direct: "set[str]" = set()
    modules: "set[str]" = {"rng", "repro.rng", "np.random", "numpy.random"}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            tail = (node.module or "").split(".")[-1]
            if tail == "rng":
                direct.update(
                    a.asname or a.name for a in node.names if a.name in _RNG_FUNCS
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.endswith(".rng") or alias.name == "rng":
                    modules.add(alias.asname or alias.name)
    return direct, modules


class _FunctionScanner:
    """Single walk of one function body filling its summary."""

    def __init__(self, fi: FunctionInfo, project: Project) -> None:
        self.fi = fi
        self.project = project
        self.ctx = fi.ctx
        self.summary = FunctionSummary(fi=fi, params=fi.params)
        if fi.cls is not None and fi.params and fi.params[0] in ("self", "cls"):
            self.summary.self_name = fi.params[0]
        self._rng_direct, self._rng_modules = _rng_bindings(fi.ctx)
        self._nested: "set[int]" = {
            id(sub)
            for child in ast.walk(fi.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not fi.node
            for sub in ast.walk(child)
        }

    def _own(self, node: ast.AST) -> bool:
        """Is *node* in this function's own body (not a nested def's)?"""
        return id(node) not in self._nested

    def _scan_retry_loops(self) -> None:
        self.summary.retry_loops = [
            loop for loop in _retry_loops_in(self.fi) if self._own(loop)
        ]

    def scan(self) -> FunctionSummary:
        s = self.summary
        self._scan_taint()
        self._scan_retry_loops()
        retry_nodes = {
            id(sub) for loop in s.retry_loops for sub in ast.walk(loop)
        }
        for node in ast.walk(self.fi.node):
            if not self._own(node):
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                self._scan_write(node)
            if isinstance(node, ast.Call):
                self._scan_call(node, in_retry_loop=id(node) in retry_nodes)
        self._scan_handled()
        return s

    # -- taint sources -------------------------------------------------- #

    def _taint_kind_of(self, value: ast.expr) -> "str | None":
        """Taint kind ("obj"/"arr"/"both") carried by expression *value*."""
        if isinstance(value, ast.Call):
            if _truthy_versioned(value):
                return "both"  # SharedMatrix(...) is obj, pool.matrix(...) is arr
            name = _call_name(value)
            if name == "AttachedMatrix":
                return "obj"
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "matrix"
                and len(value.args) == 1
                and not value.keywords
            ):
                return "arr"  # worker-state accessor: state.matrix(name)
        elif isinstance(value, ast.Subscript):
            base = value.value
            if isinstance(base, ast.Attribute) and base.attr == "matrices":
                return "obj"  # state.matrices[name]
        return None

    def _scan_taint(self) -> None:
        s = self.summary
        for node in ast.walk(self.fi.node):
            if not self._own(node) or not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            kind = self._taint_kind_of(value)
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            attrs = [
                t.attr
                for t in targets
                if isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == s.self_name
            ]
            if kind is not None:
                if kind in ("obj", "both"):
                    s.local_obj.update(names)
                if kind in ("arr", "both"):
                    s.local_arr.update(names)
                s.attr_assigns.extend((attr, kind) for attr in attrs)
            elif isinstance(value, ast.Attribute) and value.attr == "array":
                root = ast.unparse(value.value)
                for name in names:
                    s.array_alias[name] = root

    # -- writes --------------------------------------------------------- #

    def _scan_write(self, stmt: "ast.Assign | ast.AugAssign") -> None:
        s = self.summary
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for tgt in targets:
            if not isinstance(tgt, ast.Subscript):
                continue
            base = tgt.value
            if isinstance(base, ast.Attribute) and base.attr == "array":
                root, kind = ast.unparse(base.value), "obj"
            elif isinstance(base, ast.Name) and base.id in s.array_alias:
                root, kind = s.array_alias[base.id], "obj"
            elif isinstance(base, ast.Name):
                root, kind = base.id, "arr"
            elif isinstance(base, ast.Attribute):
                root, kind = ast.unparse(base), "arr"
            else:
                continue
            bracketed = SeqlockBracketRule._in_bracket_try(self.ctx, stmt)
            s.writes.append(WriteSite(stmt, root, kind, bracketed))

    # -- calls ---------------------------------------------------------- #

    def _scan_call(self, call: ast.Call, *, in_retry_loop: bool) -> None:
        s = self.summary
        s.calls.append(
            CallSite(
                call=call,
                callees=self.project.resolve(call, self.ctx),
                bracketed=SeqlockBracketRule._in_bracket_try(self.ctx, call),
                in_retry_loop=in_retry_loop,
            )
        )
        label = self._blocking_label(call)
        if label is not None:
            s.blocking.append(BlockingCall(call, label))
        self._scan_rng(call)
        self._scan_creation(call)

    def _blocking_label(self, call: ast.Call) -> "str | None":
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = ast.unparse(func.value)
            if func.attr == "sleep" and recv == "time":
                return "time.sleep"
            if func.attr == "get" and _QUEUEISH_RE.search(recv):
                return f"queue get on {recv}"
            if func.attr == "acquire":
                return f"lock acquire on {recv}"
            if func.attr in ("recv", "accept"):
                return f"socket {func.attr} on {recv}"
            if func.attr == "run" and "pool" in recv.lower():
                return f"pool dispatch via {recv}.run"
        elif isinstance(func, ast.Name) and func.id == "sleep":
            return "sleep"
        return None

    def _scan_rng(self, call: ast.Call) -> None:
        func = call.func
        hit: "str | None" = None
        if isinstance(func, ast.Name) and func.id in self._rng_direct:
            hit = func.id
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _RNG_FUNCS
            and ast.unparse(func.value) in self._rng_modules
        ):
            hit = f"{ast.unparse(func.value)}.{func.attr}"
        if hit is None:
            return
        seed: "ast.expr | None" = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "seed":
                seed = kw.value
        if isinstance(seed, ast.Constant) and (
            seed.value is None or isinstance(seed.value, int)
        ):
            self.summary.rng_calls.append(RngCall(call, hit, seed.value))

    def _scan_creation(self, call: ast.Call) -> None:
        func = call.func
        what: "str | None" = None
        if isinstance(func, ast.Attribute) and func.attr == "share" and not call.args:
            what = ".share()"
        else:
            name = _call_name(call)
            if name in _SHM_CTORS:
                what = name
        if what is None:
            return
        # Only a creation bound to a plain local name can leak silently;
        # `return Ctor()`, `self.x = Ctor()`, `f(Ctor())` all hand the
        # owner to someone (tracked through handling_params for calls).
        parent = self.ctx.parent(call)
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            self.summary.creations.append(
                CreationSite(call, parent.targets[0].id, what)
            )

    # -- handled uses (RL010) ------------------------------------------- #

    def _in_except_handler(self, node: ast.AST) -> bool:
        return any(
            isinstance(anc, ast.ExceptHandler) for anc in self.ctx.ancestors(node)
        )

    def _scan_handled(self) -> None:
        """Names whose owner provably reaches a close/owner on the main path."""
        s = self.summary
        tracked = {c.name for c in s.creations}
        if not tracked:
            return
        for node in ast.walk(self.fi.node):
            if not self._own(node):
                continue
            if isinstance(node, ast.Call):
                closing = _method_call(node, "close") or _method_call(node, "unlink")
                if closing is not None:
                    recv = closing.func.value  # type: ignore[attr-defined]
                    if (
                        isinstance(recv, ast.Name)
                        and recv.id in tracked
                        and not self._in_except_handler(node)
                    ):
                        s.handled_names.add(recv.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    s.handled_names.update(
                        n for n in tracked if _contains_name(node.value, n)
                    )
            elif isinstance(node, ast.Assign):
                stores = any(
                    isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
                )
                if stores:
                    s.handled_names.update(
                        n for n in tracked if _contains_name(node.value, n)
                    )
            elif isinstance(node, ast.withitem):
                s.handled_names.update(
                    n for n in tracked if _contains_name(node.context_expr, n)
                )


def summarize_function(fi: FunctionInfo, project: Project) -> FunctionSummary:
    return _FunctionScanner(fi, project).scan()


def _param_offset(callee: FunctionInfo, call: ast.Call) -> int:
    """Positional shift when binding call args to callee params.

    ``obj.method(a)`` binds ``a`` to the parameter *after* ``self``; a
    bare-name call binds positionally from the first parameter.
    """
    if (
        isinstance(call.func, ast.Attribute)
        and callee.cls is not None
        and callee.params
        and callee.params[0] in ("self", "cls")
    ):
        return 1
    return 0


class Summaries:
    """All function summaries + the fixpoint closures the rules consume."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.of: "dict[FunctionInfo, FunctionSummary]" = {
            fi: summarize_function(fi, project) for fi in project.functions
        }
        #: (file ctx id, class name, attribute) -> taint kind
        self.attr_taint: "dict[tuple[int, str, str], str]" = {}
        for fi, s in self.of.items():
            if fi.cls is None:
                continue
            for attr, kind in s.attr_assigns:
                key = (id(fi.ctx), fi.cls, attr)
                have = self.attr_taint.get(key)
                self.attr_taint[key] = "both" if have not in (None, kind) else kind
        self._close_sink_params()
        self._close_handling_params()
        self._close_blocking()

    # -- helpers shared with the rules ----------------------------------- #

    def attr_kind(self, fi: FunctionInfo, root: str) -> "str | None":
        """Taint kind of a ``self.X`` root expression inside *fi*'s class."""
        s = self.of[fi]
        if fi.cls is None or s.self_name is None:
            return None
        prefix = f"{s.self_name}."
        if not root.startswith(prefix) or "." in root[len(prefix) :]:
            return None
        return self.attr_taint.get((id(fi.ctx), fi.cls, root[len(prefix) :]))

    @staticmethod
    def _is_protocol_home(fi: FunctionInfo) -> bool:
        """shm.py implements the primitives; it cannot bracket itself."""
        return fi.ctx.in_module("repro/parallel/shm.py") or fi.name in (
            "begin_row_write",
            "end_row_write",
        )

    def exempt_rl008(self, fi: FunctionInfo) -> bool:
        return self._is_protocol_home(fi)

    # -- fixpoints -------------------------------------------------------- #

    def _close_sink_params(self) -> None:
        """Params reaching an unbracketed versioned write, transitively.

        Base case: an unbracketed write whose root is a parameter.  Step:
        passing a parameter into a callee's sink position outside any
        bracket makes it a sink here too.
        """
        for fi, s in self.of.items():
            if self.exempt_rl008(fi):
                continue
            for w in s.writes:
                if w.bracketed:
                    continue
                if w.root in s.params:
                    s.sink_params.setdefault(s.params.index(w.root), w.kind)
        changed = True
        while changed:
            changed = False
            for fi, s in self.of.items():
                if self.exempt_rl008(fi):
                    continue
                for cs in s.calls:
                    if cs.bracketed:
                        continue
                    for callee in cs.callees:
                        if self.exempt_rl008(callee):
                            continue
                        callee_s = self.of[callee]
                        off = _param_offset(callee, cs.call)
                        for pos, kind in callee_s.sink_params.items():
                            ai = pos - off
                            if not (0 <= ai < len(cs.call.args)):
                                continue
                            arg = cs.call.args[ai]
                            if isinstance(arg, ast.Name) and arg.id in s.params:
                                idx = s.params.index(arg.id)
                                if idx not in s.sink_params:
                                    s.sink_params[idx] = kind
                                    changed = True

    def _close_handling_params(self) -> None:
        """Params a function closes, stores, or returns (ownership taken)."""
        for fi, s in self.of.items():
            for idx, param in enumerate(s.params):
                if self._directly_handles(fi, s, param):
                    s.handling_params.add(idx)
        changed = True
        while changed:
            changed = False
            for fi, s in self.of.items():
                for cs in s.calls:
                    for callee in cs.callees:
                        callee_s = self.of[callee]
                        off = _param_offset(callee, cs.call)
                        for pos in callee_s.handling_params:
                            ai = pos - off
                            if not (0 <= ai < len(cs.call.args)):
                                continue
                            arg = cs.call.args[ai]
                            if isinstance(arg, ast.Name) and arg.id in s.params:
                                idx = s.params.index(arg.id)
                                if idx not in s.handling_params:
                                    s.handling_params.add(idx)
                                    changed = True

    @staticmethod
    def _directly_handles(fi: FunctionInfo, s: FunctionSummary, param: str) -> bool:
        for node in ast.walk(fi.node):
            if isinstance(node, ast.Call):
                closing = _method_call(node, "close") or _method_call(node, "unlink")
                if closing is not None:
                    recv = closing.func.value  # type: ignore[attr-defined]
                    if isinstance(recv, ast.Name) and recv.id == param:
                        return True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _contains_name(node.value, param):
                    return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
                ) and _contains_name(node.value, param):
                    return True
            elif isinstance(node, ast.withitem):
                if _contains_name(node.context_expr, param):
                    return True
        return False

    def _close_blocking(self) -> None:
        """Transitive "can this function block?" labels (RL011).

        ``_spin`` is the sanctioned retry ladder — its bounded sleeps are
        the protocol, so it never counts as blocking.
        """
        for fi, s in self.of.items():
            if fi.name == "_spin":
                continue
            if s.blocking:
                s.blocks = s.blocking[0].label
        changed = True
        while changed:
            changed = False
            for fi, s in self.of.items():
                if s.blocks is not None or fi.name == "_spin":
                    continue
                for cs in s.calls:
                    for callee in cs.callees:
                        if callee.name == "_spin":
                            continue
                        callee_blocks = self.of[callee].blocks
                        if callee_blocks is not None:
                            s.blocks = f"{callee.name} -> {callee_blocks}"
                            changed = True
                            break
                    if s.blocks is not None:
                        break

def _is_retry_loop(node: ast.stmt) -> bool:
    """A seqlock retry loop: iterates the retry budget or calls ``_spin``."""
    if isinstance(node, ast.For):
        if "_SEQLOCK_MAX_TRIES" in ast.unparse(node.iter):
            return True
    elif not isinstance(node, ast.While):
        return False
    return any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Name)
        and sub.func.id == "_spin"
        for sub in ast.walk(node)
    )


def _retry_loops_in(fi: FunctionInfo) -> Iterator[ast.stmt]:
    for node in ast.walk(fi.node):
        if isinstance(node, (ast.For, ast.While)) and _is_retry_loop(node):
            yield node
