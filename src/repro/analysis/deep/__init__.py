"""Interprocedural (whole-program) reprolint pass — ``lint --deep``.

Layers on top of the per-file engine: :mod:`.callgraph` builds the
project model, :mod:`.summaries` digests every function once, and
:mod:`.rules` runs RL008–RL011 over the closure.  The runtime twin of
these checks lives in :mod:`repro.analysis.sanitize`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..lint.engine import Finding
from .callgraph import FunctionInfo, Project
from .rules import DEEP_REGISTRY, DeepRule, default_deep_rules, register_deep
from .summaries import FunctionSummary, Summaries, summarize_function

__all__ = [
    "DEEP_REGISTRY",
    "DeepRule",
    "FunctionInfo",
    "FunctionSummary",
    "Project",
    "Summaries",
    "deep_lint_paths",
    "deep_lint_project",
    "deep_lint_sources",
    "default_deep_rules",
    "register_deep",
    "summarize_function",
]


def deep_lint_project(
    project: Project,
    rules: "Iterable[DeepRule] | None" = None,
    *,
    keep_suppressed: bool = False,
) -> "list[Finding]":
    """Run the deep rules over an already-built project.

    Suppression comments work exactly as for the per-file rules — the
    finding's file context decides, so a ``# reprolint: disable=RL008``
    next to the flagged line silences it (and shows up ``suppressed``
    in the JSON output when *keep_suppressed* is set).
    """
    from dataclasses import replace

    active = default_deep_rules() if rules is None else list(rules)
    summaries = Summaries(project)
    findings: "list[Finding]" = []
    for rule in active:
        for f in rule.check(project, summaries):
            ctx = project.context_for(f.path)
            if ctx is not None and ctx.is_suppressed(f.rule, f.line):
                if keep_suppressed:
                    findings.append(replace(f, suppressed=True))
            else:
                findings.append(f)
    return sorted(findings)


def deep_lint_paths(
    paths: Iterable["Path | str"],
    rules: "Iterable[DeepRule] | None" = None,
    *,
    keep_suppressed: bool = False,
) -> "list[Finding]":
    """Build the project from *paths* and run the deep rules over it."""
    project = Project.from_paths(paths)
    return deep_lint_project(project, rules, keep_suppressed=keep_suppressed)


def deep_lint_sources(
    sources: Iterable["tuple[str, str]"],
    rules: "Iterable[DeepRule] | None" = None,
    *,
    keep_suppressed: bool = False,
) -> "list[Finding]":
    """Run the deep rules over ``(pretend_path, source)`` pairs (tests)."""
    project = Project.from_sources(sources)
    return deep_lint_project(project, rules, keep_suppressed=keep_suppressed)
