"""Interprocedural rules RL008–RL011 (``python -m repro lint --deep``).

Each rule consumes the :class:`~repro.analysis.deep.summaries.Summaries`
closure rather than re-walking callee bodies: RL008 chases versioned-
matrix taint through call arguments into sink parameters, RL009 pins RNG
construction to :mod:`repro.rng` seed flow, RL010 demands every freshly
created shared-memory owner reach a close/owner on the main path, and
RL011 forbids anything that can park the process inside a seqlock
read-retry loop.

These rules are the *static* half of a two-layer check; the runtime
sanitizer (:mod:`repro.analysis.sanitize`) enforces the same protocols
dynamically where the over-approximation here cannot decide (virtual
dispatch, data-dependent aliasing).  The fixture corpus in
``tests/analysis`` asserts per injected violation which layer catches it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ...errors import ParameterError
from ..lint.engine import Finding
from .callgraph import FunctionInfo, Project
from .summaries import FunctionSummary, Summaries, _param_offset

__all__ = [
    "DEEP_REGISTRY",
    "DeepRule",
    "default_deep_rules",
    "register_deep",
]


class DeepRule:
    """One interprocedural invariant, checked over a whole project.

    Unlike the per-file :class:`~repro.analysis.lint.engine.Rule`,
    ``check`` receives the project and the summary closure; findings may
    land in any file.  Suppression filtering is still the engine's job.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, project: Project, summaries: Summaries) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, fi: FunctionInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(fi.ctx.path),
            line=getattr(node, "lineno", fi.node.lineno),
            col=getattr(node, "col_offset", fi.node.col_offset),
            rule=self.code,
            message=message,
        )


#: code -> deep rule class; populated by :func:`register_deep`.
DEEP_REGISTRY: "dict[str, type[DeepRule]]" = {}


def register_deep(cls: "type[DeepRule]") -> "type[DeepRule]":
    if not cls.code or not re.fullmatch(r"RL\d{3}", cls.code):
        raise ParameterError(f"deep rule {cls.__name__} needs a code matching RLxxx")
    if cls.code in DEEP_REGISTRY:
        raise ParameterError(f"duplicate deep rule code {cls.code}")
    DEEP_REGISTRY[cls.code] = cls
    return cls


def default_deep_rules() -> "list[DeepRule]":
    return [DEEP_REGISTRY[code]() for code in sorted(DEEP_REGISTRY)]


def _kinds_match(arg_kind: str, sink_kind: str) -> bool:
    return "both" in (arg_kind, sink_kind) or arg_kind == sink_kind


@register_deep
class InterproceduralBracketRule(DeepRule):
    """RL008 — versioned-matrix writes bracketed even through callees.

    RL001 sees the bracket and the write in one function; this rule also
    flags (a) an unbracketed write to a matrix the function itself
    obtained (``versioned=True`` construction, ``state.matrix(...)``,
    ``state.matrices[...]``, a tainted ``self`` attribute), and (b) an
    unbracketed call that passes such a matrix into a callee whose
    summary says the matching parameter reaches a row write.
    """

    code = "RL008"
    name = "deep-seqlock-bracket"
    description = (
        "every reachable write to a versioned matrix row must be inside a "
        "begin_row_write/end_row_write bracket, including writes in callees"
    )

    def _root_taint(
        self, summaries: Summaries, fi: FunctionInfo, s: FunctionSummary, root: str
    ) -> "str | None":
        """Taint kind of a write-site root expression, or None."""
        kinds = []
        if root in s.local_obj:
            kinds.append("obj")
        if root in s.local_arr:
            kinds.append("arr")
        attr = summaries.attr_kind(fi, root)
        if attr is not None:
            kinds.append(attr)
        if not kinds:
            return None
        if "both" in kinds or len(set(kinds)) > 1:
            return "both"
        return kinds[0]

    def _arg_taint(
        self, summaries: Summaries, fi: FunctionInfo, s: FunctionSummary, arg: ast.expr
    ) -> "str | None":
        """Taint kind carried by a call argument expression, or None."""
        if isinstance(arg, ast.Name):
            if arg.id in s.array_alias:
                root = s.array_alias[arg.id]
                if self._root_taint(summaries, fi, s, root) in ("obj", "both"):
                    return "arr"
            return self._root_taint(summaries, fi, s, arg.id)
        if isinstance(arg, ast.Attribute):
            if arg.attr == "array":
                root = ast.unparse(arg.value)
                if self._root_taint(summaries, fi, s, root) in ("obj", "both"):
                    return "arr"
                return None
            return self._root_taint(summaries, fi, s, ast.unparse(arg))
        if isinstance(arg, ast.Subscript):
            base = arg.value
            if isinstance(base, ast.Attribute) and base.attr == "matrices":
                return "obj"
        return None

    def check(self, project: Project, summaries: Summaries) -> Iterator[Finding]:
        for fi, s in summaries.of.items():
            if summaries.exempt_rl008(fi):
                continue
            for w in s.writes:
                if w.bracketed:
                    continue
                kind = self._root_taint(summaries, fi, s, w.root)
                if kind is None:
                    continue
                yield self.finding(
                    fi,
                    w.node,
                    f"write to versioned matrix '{w.root}' outside a "
                    f"begin_row_write/end_row_write bracket in {fi.name}()",
                )
            for cs in s.calls:
                if cs.bracketed:
                    continue
                for callee in cs.callees:
                    if summaries.exempt_rl008(callee):
                        continue
                    callee_s = summaries.of[callee]
                    off = _param_offset(callee, cs.call)
                    for pos, sink_kind in callee_s.sink_params.items():
                        ai = pos - off
                        if not (0 <= ai < len(cs.call.args)):
                            continue
                        arg = cs.call.args[ai]
                        # A bare parameter propagates taint to *our*
                        # callers via the sink fixpoint instead.
                        if isinstance(arg, ast.Name) and arg.id in s.params:
                            continue
                        arg_kind = self._arg_taint(summaries, fi, s, arg)
                        if arg_kind is None or not _kinds_match(arg_kind, sink_kind):
                            continue
                        yield self.finding(
                            fi,
                            cs.call,
                            f"call to {callee.name}() writes versioned matrix "
                            f"rows via '{ast.unparse(arg)}' outside a "
                            "begin_row_write/end_row_write bracket",
                        )
                        break  # one finding per call site is enough


@register_deep
class RngTaintRule(DeepRule):
    """RL009 — library RNG streams must be rooted in caller-provided seeds.

    RL002 forbids raw ``np.random.default_rng`` / ``random.*``; this rule
    catches the subtler break: a helper deep in ``src/repro`` calling the
    *sanctioned* entry points (``ensure_rng``, ``derive_seed``,
    ``spawn``) with a literal, silently pinning every caller to one
    stream and detaching the result from the experiment seed.
    """

    code = "RL009"
    name = "deep-rng-taint"
    description = (
        "repro.rng entry points in library code must be fed seeds that flow "
        "from callers, never integer/None literals"
    )

    _SEED_PARAM_RE = re.compile(r"seed", re.IGNORECASE)

    def _in_scope(self, fi: FunctionInfo) -> bool:
        posix = f"/{fi.ctx.posix_path}"
        return "/repro/" in posix and not posix.endswith("repro/rng.py")

    def check(self, project: Project, summaries: Summaries) -> Iterator[Finding]:
        for fi, s in summaries.of.items():
            if not self._in_scope(fi):
                continue
            has_seed_param = any(
                self._SEED_PARAM_RE.search(p) for p in s.params
            )
            for rc in s.rng_calls:
                if rc.seed is None and not has_seed_param:
                    # ensure_rng(None) in a seed-less function is the
                    # documented "fresh entropy" escape hatch.
                    continue
                if rc.seed is None:
                    message = (
                        f"{rc.func}(None) ignores the seed parameter of "
                        f"{fi.name}() — thread the caller's seed through"
                    )
                else:
                    message = (
                        f"{rc.func}({rc.seed!r}) re-seeds from a literal in "
                        f"library code — derive the seed from the caller "
                        "(repro.rng.derive_seed) instead"
                    )
                yield self.finding(fi, rc.node, message)


@register_deep
class ShmEscapeRule(DeepRule):
    """RL010 — shared-memory owners must reach a close/owner on all
    non-exceptional paths.

    RL003's per-file heuristic sees ``share()`` and ``close()`` in one
    function; this rule follows the handle through the call graph: a
    creation handed to a callee counts as handled only if some resolved
    target closes, stores, returns, or ``with``-manages that parameter
    (transitively).  A close that only happens inside an ``except``
    handler does not count — the main path still leaks.
    """

    code = "RL010"
    name = "deep-shm-escape"
    description = (
        "every share()/Shared* owner must reach close()/unlink() or a "
        "registered owner on the non-exceptional path, across calls"
    )

    def _handled_by_call(
        self, summaries: Summaries, s: FunctionSummary, name: str
    ) -> bool:
        for cs in s.calls:
            call = cs.call
            if any(
                kw.value is not None
                and isinstance(kw.value, ast.Name)
                and kw.value.id == name
                for kw in call.keywords
            ):
                return True  # keyword hand-off: assume ownership transfer
            for ai, arg in enumerate(call.args):
                if not (isinstance(arg, ast.Name) and arg.id == name):
                    continue
                if not cs.callees:
                    return True  # external callee: assume it takes ownership
                for callee in cs.callees:
                    off = _param_offset(callee, call)
                    if (ai + off) in summaries.of[callee].handling_params:
                        return True
        return False

    def check(self, project: Project, summaries: Summaries) -> Iterator[Finding]:
        for fi, s in summaries.of.items():
            for creation in s.creations:
                if creation.name in s.handled_names:
                    continue
                if self._handled_by_call(summaries, s, creation.name):
                    continue
                yield self.finding(
                    fi,
                    creation.node,
                    f"shared-memory owner '{creation.name}' from "
                    f"{creation.what} never reaches close()/unlink() or an "
                    f"owner on the non-exceptional path of {fi.name}()",
                )


@register_deep
class BlockingInRetryLoopRule(DeepRule):
    """RL011 — nothing that parks the process inside a seqlock retry loop.

    A seqlock reader loops until it observes an even, stable row version;
    blocking inside that loop (queue ``get``, ``time.sleep`` outside the
    ``_spin`` ladder, lock acquisition, pool dispatch) turns a bounded
    spin into a potential deadlock against the writer it is waiting out.
    Transitive: a call whose summary says the callee can block is flagged
    at the call site.
    """

    code = "RL011"
    name = "deep-seqlock-blocking"
    description = (
        "no blocking calls (queue get, sleep beyond the _spin ladder, pool "
        "dispatch) inside a seqlock read-retry loop, transitively"
    )

    def check(self, project: Project, summaries: Summaries) -> Iterator[Finding]:
        for fi, s in summaries.of.items():
            if not s.retry_loops:
                continue
            retry_nodes = {
                id(sub) for loop in s.retry_loops for sub in ast.walk(loop)
            }
            seen: "set[tuple[int, int]]" = set()
            for b in s.blocking:
                if id(b.node) not in retry_nodes:
                    continue
                key = (b.node.lineno, b.node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    fi,
                    b.node,
                    f"blocking call ({b.label}) inside a seqlock read-retry "
                    f"loop in {fi.name}()",
                )
            for cs in s.calls:
                if not cs.in_retry_loop:
                    continue
                for callee in cs.callees:
                    if callee.name == "_spin":
                        continue
                    chain = summaries.of[callee].blocks
                    if chain is None:
                        continue
                    key = (cs.call.lineno, cs.call.col_offset)
                    if key in seen:
                        break
                    seen.add(key)
                    yield self.finding(
                        fi,
                        cs.call,
                        f"call to {callee.name}() can block ({chain}) inside "
                        f"a seqlock read-retry loop in {fi.name}()",
                    )
                    break
