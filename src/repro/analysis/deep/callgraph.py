"""Project model + call graph for the interprocedural (``--deep``) pass.

The per-file rules (``RL001``–``RL007``) see one :class:`~repro.analysis
.lint.engine.FileContext` at a time; the protocols they guard do not stop
at function boundaries.  :class:`Project` parses every file once, indexes
every function/method definition (:class:`FunctionInfo`), and resolves
call expressions to their *possible* project-internal targets so the deep
rules (:mod:`repro.analysis.deep.rules`) can follow a versioned-matrix
write, an escaping shm handle, or a blocking call through the graph.

Resolution is deliberately name-based and over-approximate — Python has
no static types to narrow a receiver, and the protocols are cheap to keep
conservative:

* ``name(...)`` resolves to same-file definitions of ``name`` first (the
  overwhelmingly common case for the helpers these rules chase), falling
  back to every project function of that name;
* ``obj.attr(...)`` resolves to every project function or method named
  ``attr``;
* anything else (``numpy``, stdlib, comprehension targets) resolves to
  ``[]`` — external, opaque, assumed non-writing/non-blocking.

Where the over-approximation provably cannot decide (e.g. which concrete
class a ``self`` attribute holds at runtime), the runtime sanitizer
(:mod:`repro.analysis.sanitize`) is the second layer of the same
protocol check — see the module docstrings there and in ``deep/rules``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from ..lint.engine import FileContext, iter_python_files

__all__ = ["FunctionInfo", "Project"]

FunctionNode = "ast.FunctionDef | ast.AsyncFunctionDef"


class FunctionInfo:
    """One function or method definition somewhere in the project."""

    __slots__ = ("node", "ctx", "cls", "qualname")

    def __init__(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        ctx: FileContext,
        cls: "str | None",
    ) -> None:
        self.node = node
        self.ctx = ctx
        self.cls = cls  # name of the enclosing class, or None for free functions
        scope = f"{cls}." if cls else ""
        self.qualname = f"{ctx.posix_path}::{scope}{node.name}"

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> "list[str]":
        """Positional parameter names (posonly + regular), in order."""
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


def _functions_in(ctx: FileContext) -> Iterator[FunctionInfo]:
    """Every function/method in *ctx*, tagged with its enclosing class."""

    def walk(node: ast.AST, cls: "str | None") -> Iterator[FunctionInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield FunctionInfo(child, ctx, cls)
                yield from walk(child, cls)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            else:
                yield from walk(child, cls)

    yield from walk(ctx.tree, None)


class Project:
    """Every parsed file plus a by-name index of its functions."""

    def __init__(self, contexts: Iterable[FileContext]) -> None:
        self.contexts = list(contexts)
        self.by_path: "dict[str, FileContext]" = {str(c.path): c for c in self.contexts}
        self.functions: "list[FunctionInfo]" = []
        self.by_name: "dict[str, list[FunctionInfo]]" = {}
        for ctx in self.contexts:
            for fi in _functions_in(ctx):
                self.functions.append(fi)
                self.by_name.setdefault(fi.name, []).append(fi)

    @classmethod
    def from_paths(cls, paths: Iterable["Path | str"]) -> "Project":
        """Parse every Python file under *paths* (unparsable files are
        skipped here — the per-file pass already reports them as RL000)."""
        contexts = []
        for file_path in iter_python_files(paths):
            text = file_path.read_text(encoding="utf-8")
            try:
                contexts.append(FileContext(file_path, text))
            except SyntaxError:
                continue
        return cls(contexts)

    @classmethod
    def from_sources(cls, sources: Iterable["tuple[str, str]"]) -> "Project":
        """Build a project from ``(pretend_path, source)`` pairs (tests)."""
        return cls(FileContext(path, text) for path, text in sources)

    def resolve(self, call: ast.Call, ctx: FileContext) -> "list[FunctionInfo]":
        """Best-effort static targets of *call* made from file *ctx*.

        Same-file definitions shadow the global name pool for bare-name
        calls; attribute calls fan out to every same-named function.  An
        empty list means "external" — numpy, stdlib, builtins.
        """
        func = call.func
        if isinstance(func, ast.Name):
            candidates = self.by_name.get(func.id, [])
            local = [fi for fi in candidates if fi.ctx is ctx]
            return list(local or candidates)
        if isinstance(func, ast.Attribute):
            return list(self.by_name.get(func.attr, []))
        return []

    def context_for(self, path: str) -> "FileContext | None":
        return self.by_path.get(path)
