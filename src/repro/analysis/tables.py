"""ASCII table rendering for experiment output.

Every bench prints its results as a monospace table (captured in
``bench_output.txt`` and transcribed into ``EXPERIMENTS.md``).  The
renderer right-aligns numbers, left-aligns text, and accepts any mix of
str/int/float cells.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value) -> str:
    """Human formatting: floats get 4 significant digits, rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: "str | None" = None) -> str:
    """Render rows as an ASCII grid table."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(col: int) -> bool:
        return all(
            _looks_numeric(row[col]) for row in str_rows if col < len(row)
        ) and bool(str_rows)

    numeric = [is_numeric(i) for i in range(len(headers))]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def _looks_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return cell in {"inf", "nan", "-", ""}
