"""Dependency-free ASCII plotting for sweep results.

The experiment CLI and benches render log-log scatter plots directly in
the terminal (this repo runs in headless environments; matplotlib is
deliberately not a dependency).  Good enough to *see* an exponent: a
straight line of `*`s in log-log space, with a reference slope drawn as
`.`s for comparison.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ParameterError

__all__ = ["ascii_loglog", "ascii_series"]


def ascii_loglog(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 18,
    ref_slope: "float | None" = None,
    title: "str | None" = None,
) -> str:
    """Log-log scatter of (xs, ys) with an optional reference-slope line.

    The reference line (drawn with ``.``) is anchored at the first data
    point, so data following ``y ∝ x^ref_slope`` hugs it.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ParameterError("need ≥ 2 points with matching lengths")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ParameterError("log-log plotting needs positive data")
    lx = [math.log10(x) for x in xs]
    ly = [math.log10(y) for y in ys]
    ref_pts: list[tuple[float, float]] = []
    if ref_slope is not None:
        b = ly[0] - ref_slope * lx[0]
        ref_pts = [(x, ref_slope * x + b) for x in lx]
    all_y = ly + [y for _x, y in ref_pts]
    x0, x1 = min(lx), max(lx)
    y0, y1 = min(all_y), max(all_y)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(xv: float, yv: float, ch: str) -> None:
        col = int((xv - x0) / xr * (width - 1))
        row = height - 1 - int((yv - y0) / yr * (height - 1))
        if grid[row][col] == " " or ch == "*":
            grid[row][col] = ch

    for xv, yv in ref_pts:
        put(xv, yv, ".")
    for xv, yv in zip(lx, ly):
        put(xv, yv, "*")

    lines = []
    if title:
        lines.append(title)
    top = f"{10**y1:.3g}"
    bottom = f"{10**y0:.3g}"
    pad = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {10**x0:<.3g}" + " " * max(1, width - 16) + f"{10**x1:>.3g}"
    )
    if ref_slope is not None:
        lines.append(f"    ('*' data, '.' reference slope {ref_slope:g})")
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    title: "str | None" = None,
) -> str:
    """Linear-scale line-ish plot for small sweeps (ε, k, r)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ParameterError("need ≥ 2 points with matching lengths")
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(xs, ys):
        col = int((xv - x0) / xr * (width - 1))
        row = height - 1 - int((yv - y0) / yr * (height - 1))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    top, bottom = f"{y1:.3g}", f"{y0:.3g}"
    pad = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(" " * pad + f"  {x0:<.3g}" + " " * max(1, width - 16) + f"{x1:>.3g}")
    return "\n".join(lines)
