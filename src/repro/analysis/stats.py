"""Summary statistics for experiment trials.

Multi-trial experiments (Poisson graphs are random!) report mean ± a
t-based half-width.  Kept deliberately tiny — just what the benches print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ParameterError

__all__ = ["TrialSummary", "summarize"]

# Two-sided 95% t quantiles for df = 1..30 (df > 30 ≈ normal 1.96).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


@dataclass(frozen=True)
class TrialSummary:
    """Mean, spread and 95% confidence half-width of repeated trials."""

    n: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> TrialSummary:
    """Summary of a trial series (sample std, t-based 95% CI)."""
    vals = list(float(v) for v in values)
    if not vals:
        raise ParameterError("cannot summarize zero trials")
    n = len(vals)
    mean = sum(vals) / n
    if n == 1:
        return TrialSummary(n=1, mean=mean, std=0.0, ci95=0.0, minimum=mean, maximum=mean)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    std = math.sqrt(var)
    t = _T95[min(n - 2, len(_T95) - 1)] if n - 1 <= len(_T95) else 1.96
    return TrialSummary(
        n=n,
        mean=mean,
        std=std,
        ci95=t * std / math.sqrt(n),
        minimum=min(vals),
        maximum=max(vals),
    )
