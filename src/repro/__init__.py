"""repro — reproduction of *Remote-Spanners: What to Know beyond Neighbors*.

Jacquet & Viennot, INRIA RR-6679 / IPPS 2009.

A remote-spanner of an unweighted graph G is a spanning sub-graph H that
approximates distances from every node *u* once H is augmented with *u*'s
own incident edges (which a router always knows).  This package implements
the paper's dominating-tree characterizations, its four construction
algorithms, the k-connecting multi-connectivity extension, the distributed
protocol realizing them in constant rounds, the geometric input models
(random unit disk graphs, unit ball graphs of doubling metrics), the
regular-spanner baselines of Table 1, and the link-state routing
application that motivates the whole notion.

Quickstart::

    from repro import generators, build_k_connecting_spanner, is_remote_spanner

    g = generators.gnp_random_graph(80, 0.15, seed=1)
    rs = build_k_connecting_spanner(g, k=1)       # exact-distance remote-spanner
    assert is_remote_spanner(rs.graph, g, 1.0, 0.0)
    print(rs.num_edges, "of", g.num_edges, "edges advertised")
"""

from ._version import __version__
from .errors import (
    GraphError,
    InfeasibleError,
    NodeNotFound,
    NotASubgraphError,
    ParameterError,
    ProtocolError,
    ReproError,
)
from .graph import (
    AugmentedView,
    CSRGraph,
    Graph,
    augmented_distances,
    augmented_graph,
    batched_bfs,
    bfs_distances,
    generators,
)
from .core import (
    DomTree,
    RemoteSpanner,
    StretchGuarantee,
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    build_remote_spanner,
    dom_tree_greedy,
    dom_tree_kcover,
    dom_tree_kmis,
    dom_tree_mis,
    is_dominating_tree,
    is_k_connecting_dominating_tree,
    is_k_connecting_remote_spanner,
    is_remote_spanner,
    mpr_set,
)
from .geometry import poisson_points, uniform_points, unit_ball_graph, unit_disk_graph
from .paths import disjoint_paths, k_connecting_distance, k_connecting_profile

__all__ = [
    "__version__",
    "GraphError",
    "InfeasibleError",
    "NodeNotFound",
    "NotASubgraphError",
    "ParameterError",
    "ProtocolError",
    "ReproError",
    "AugmentedView",
    "Graph",
    "augmented_distances",
    "augmented_graph",
    "CSRGraph",
    "batched_bfs",
    "bfs_distances",
    "generators",
    "DomTree",
    "RemoteSpanner",
    "StretchGuarantee",
    "build_biconnecting_spanner",
    "build_k_connecting_spanner",
    "build_remote_spanner",
    "dom_tree_greedy",
    "dom_tree_kcover",
    "dom_tree_kmis",
    "dom_tree_mis",
    "is_dominating_tree",
    "is_k_connecting_dominating_tree",
    "is_k_connecting_remote_spanner",
    "is_remote_spanner",
    "mpr_set",
    "poisson_points",
    "uniform_points",
    "unit_ball_graph",
    "unit_disk_graph",
    "disjoint_paths",
    "k_connecting_distance",
    "k_connecting_profile",
]
