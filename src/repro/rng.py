"""Deterministic random-number helpers.

Every randomized entry point in the library accepts a ``seed`` argument that
is normalized through :func:`ensure_rng`.  Experiments derive independent
per-trial streams with :func:`spawn` so that adding a trial never perturbs
the randomness of existing trials — the property that makes the benchmark
tables in ``EXPERIMENTS.md`` reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["ensure_rng", "spawn", "derive_seed"]

#: Seed type accepted throughout the library.
SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a non-deterministic generator, an ``int`` a seeded one,
    and an existing generator is passed through unchanged (so callers can
    thread a single stream through a pipeline of calls).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: int, *tags: "int | str") -> int:
    """Derive a child seed from *seed* and a tuple of *tags*.

    Uses :class:`numpy.random.SeedSequence` entropy mixing, so distinct tag
    tuples give statistically independent streams.  Tags may be strings
    (hashed stably via UTF-8 bytes — *all* of them, chunked into 64-bit
    words, so long tags sharing a prefix still derive distinct seeds) or
    ints.
    """
    mixed: list[int] = [seed]
    for tag in tags:
        if isinstance(tag, str):
            data = tag.encode("utf-8")
            for i in range(0, max(len(data), 1), 8):
                mixed.append(int.from_bytes(data[i : i + 8].ljust(8, b"\0"), "little"))
        else:
            mixed.append(int(tag))
    return int(np.random.SeedSequence(mixed).generate_state(1)[0])


def spawn(seed: int, n: int) -> Iterator[np.random.Generator]:
    """Yield *n* independent generators derived from integer *seed*."""
    ss = np.random.SeedSequence(seed)
    for child in ss.spawn(n):
        yield np.random.default_rng(child)
