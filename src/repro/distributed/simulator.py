"""Synchronous message-passing simulator (the LOCAL model with broadcasts).

Executes a set of :class:`~repro.distributed.node.ProtocolNode` instances
on a communication graph in lock-step rounds:

1. deliver to each node every message its neighbors broadcast last round;
2. run each node's ``on_round`` handler;
3. collect fresh broadcasts for next round's delivery.

The run ends when all nodes have halted and no message is in flight, or at
``max_rounds``.  The simulator is the cost model of the paper made
executable: Table 1's O(1) / O(ε⁻¹) "computation time" claims are measured
as the round counter of this loop, and the flooding overhead discussion as
its ``links_advertised`` counter.

Determinism: nodes are processed in id order and inboxes are sorted by
(sender, repr(message)), so runs are bit-for-bit reproducible.

The communication topology is snapshotted into CSR form at construction
(:meth:`Graph.freeze <repro.graph.graph.Graph.freeze>`): flood-heavy
protocols deliver every broadcast to every neighbor each round, so the
delivery loop walks zero-copy CSR rows instead of hashing through Python
sets.  The graph must not be mutated while a simulation runs — evolving
topologies are the business of :mod:`repro.dynamic`, which replays churn
as explicit event streams between runs.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import ProtocolError
from ..graph import Graph
from .messages import size_in_links
from .metrics import SimStats
from .node import ProtocolNode

__all__ = ["SyncNetwork"]


class SyncNetwork:
    """A synchronous network of protocol nodes over a fixed graph."""

    def __init__(self, g: Graph, node_factory: "Callable[[int], ProtocolNode]") -> None:
        self.graph = g
        self.nodes: dict[int, ProtocolNode] = {u: node_factory(u) for u in g.nodes()}
        for u, node in self.nodes.items():
            if node.ident != u:
                raise ProtocolError(f"factory returned node with ident {node.ident} for {u}")
        self.stats = SimStats()
        # CSR snapshot of the (fixed) topology: broadcast delivery is the
        # hot loop, one neighbor scan per message per round.
        csr = g.freeze() if hasattr(g, "freeze") else g
        self._indptr = csr._indptr
        self._rows = memoryview(csr._indices)
        # messages pending delivery this round: receiver -> [(sender, msg)]
        self._pending: dict[int, list] = {u: [] for u in g.nodes()}

    # ------------------------------------------------------------------ #

    def run(self, max_rounds: int = 10_000) -> SimStats:
        """Drive rounds until quiescence; returns the cost statistics."""
        for _ in range(max_rounds):
            if self._quiescent():
                return self.stats
            self.step()
        raise ProtocolError(f"protocol did not quiesce within {max_rounds} rounds")

    def step(self) -> None:
        """Execute one synchronous round."""
        round_index = self.stats.rounds + 1
        inboxes, self._pending = self._pending, {u: [] for u in self.graph.nodes()}
        delivered = sum(len(v) for v in inboxes.values())
        for u in sorted(self.nodes):
            inbox = sorted(inboxes[u], key=lambda sm: (sm[0], repr(sm[1])))
            self.nodes[u].on_round(round_index, [m for _s, m in inbox])
        broadcasts = 0
        links = 0
        indptr, rows = self._indptr, self._rows
        for u in sorted(self.nodes):
            for message in self.nodes[u].drain_outbox():
                broadcasts += 1
                links += size_in_links(message)
                for v in rows[indptr[u] : indptr[u + 1]]:
                    self._pending[v].append((u, message))
        self.stats.record_round(messages=delivered, broadcasts=broadcasts, links=links)

    def _quiescent(self) -> bool:
        if any(msgs for msgs in self._pending.values()):
            return False
        return all(node.halted for node in self.nodes.values())

    # ------------------------------------------------------------------ #

    @property
    def node_map(self) -> "Mapping[int, ProtocolNode]":
        return self.nodes
