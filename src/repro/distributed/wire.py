"""Sequence-numbered LSA wire protocol for the distributed serving tier.

The actor tier (:mod:`~repro.distributed.actors`) does not flood full
topology the way OSPF-style link state does.  The maintainer already
computes the *net* effect of every churn tick (``BatchReport``'s
ΔG/ΔH/joins), so what crosses the wire is an incremental link-state
advertisement: one :class:`LsaUpdate` per tick, sequence-numbered by the
feed, scope-flooded over the actor overlay with a TTL and a loop-window
header, deduplicated and aged by each actor's :class:`LsaDb`.

Protocol elements (the classic LSR skeleton, adapted):

* **HELLO / neighbor timeout** — :class:`HelloBeacon` carries the
  sender's highest contiguously-applied sequence number; overlay
  neighbors use it for liveness (an actor that stops beaconing is marked
  suspect after :data:`HELLO_TIMEOUT` silent rounds) and for
  anti-entropy (a beacon ahead of the local applied seq reveals missed
  updates → :class:`ResendRequest`).
* **dedup + aging** — :class:`LsaDb` accepts each ``(origin, seq)`` at
  most once, applies updates strictly in sequence order, and ages out
  pending out-of-order updates that a gap has stalled for longer than
  ``max_age`` rounds (they are re-requested rather than applied late).
* **TTL / loop-window headers** — a relayed copy decrements ``ttl`` and
  appends the relaying actor to the bounded ``seen`` window;
  :meth:`LsaUpdate.relay` answers ``None`` at an exhausted TTL or when
  the relayer already appears in the window, so no copy can circulate
  an overlay cycle (regression-tested in
  ``tests/distributed/test_wire_protocol.py``).

:class:`FullTopology` is the naive-flooding twin — the entire live G and
H edge sets per tick — kept as the cold-start bootstrap and as the
baseline ``BENCH_wire.json`` measures incremental LSAs against.
:class:`RouteQuery`/:class:`RouteReply` carry ``route_served`` journeys
hop-by-hop across actors.  Every type registers its encoding *and* its
link-unit cost with :mod:`~repro.distributed.codec` — one ruler for the
simulator and the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ProtocolError
from . import codec

__all__ = [
    "HELLO_TIMEOUT",
    "LOOP_WINDOW",
    "FullTopology",
    "HelloBeacon",
    "LsaDb",
    "LsaUpdate",
    "ResendRequest",
    "RouteQuery",
    "RouteReply",
]

#: Loop-window header length: a relayed copy remembers at most this many
#: relaying actors.  Long enough to cover any cycle of the small actor
#: overlay; bounded so the header cannot grow with the flood.
LOOP_WINDOW = 16

#: Overlay-neighbor liveness: rounds of silence before a peer that has
#: beaconed before is marked suspect.
HELLO_TIMEOUT = 8


@dataclass(frozen=True)
class HelloBeacon:
    """Liveness + anti-entropy probe between overlay peers.

    ``seq`` is the sender's highest contiguously-applied feed sequence
    number — a receiver that is behind learns it missed updates without
    waiting for a later flood to reveal the gap.
    """

    origin: int  # sending endpoint (actor or feed driver)
    seq: int = 0
    stamp: int = 0  # sender's round clock at emission


@dataclass(frozen=True)
class LsaUpdate:
    """One tick's net topology delta, sequence-numbered by the feed.

    ``origin`` is the feed endpoint; ``seq`` starts at 1 and increments
    per emitted update.  The payload is exactly the maintainer's wire
    delta (net ΔG, ΔH, joined ids, the id-space size after the tick and
    whether the repair was a full rebuild — the deltas stay *net* either
    way).  ``ttl``/``seen`` are the scoped-flooding headers.
    """

    origin: int
    seq: int
    ttl: int = 0
    g_added: "tuple[tuple[int, int], ...]" = ()
    g_removed: "tuple[tuple[int, int], ...]" = ()
    h_added: "tuple[tuple[int, int], ...]" = ()
    h_removed: "tuple[tuple[int, int], ...]" = ()
    nodes_joined: "tuple[int, ...]" = ()
    num_nodes: int = 0
    rebuilt: bool = False
    stamp: int = 0
    seen: "tuple[int, ...]" = ()  # loop-window header: relaying actors

    def relay(self, via: int) -> "LsaUpdate | None":
        """The copy actor *via* re-floods; ``None`` when it must drop.

        Dropped at an exhausted TTL (``ttl <= 0`` — never a negative-TTL
        copy) and when *via* already appears in the loop window (the
        copy has circled back around the overlay).
        """
        if self.ttl <= 0 or via in self.seen:
            return None
        window = (*self.seen, via)[-LOOP_WINDOW:]
        return replace(self, ttl=self.ttl - 1, seen=window)


@dataclass(frozen=True)
class FullTopology:
    """Naive full-flooding advertisement: the whole live G and H.

    The cold-start bootstrap (sequence 0 seeds every actor's replica)
    and the baseline the bytes-on-the-wire benchmark measures the
    incremental :class:`LsaUpdate` stream against.
    """

    origin: int
    seq: int
    ttl: int = 0
    num_nodes: int = 0
    g_edges: "tuple[tuple[int, int], ...]" = ()
    h_edges: "tuple[tuple[int, int], ...]" = ()
    stamp: int = 0
    seen: "tuple[int, ...]" = ()

    def relay(self, via: int) -> "FullTopology | None":
        if self.ttl <= 0 or via in self.seen:
            return None
        window = (*self.seen, via)[-LOOP_WINDOW:]
        return replace(self, ttl=self.ttl - 1, seen=window)


@dataclass(frozen=True)
class ResendRequest:
    """Anti-entropy: *origin* asks the feed to retransmit missing seqs."""

    origin: int
    want: "tuple[int, ...]" = ()


@dataclass(frozen=True)
class RouteQuery:
    """A ``route_served`` journey in flight across the actor tier.

    ``path``/``potentials`` accumulate exactly the fields of
    :class:`~repro.routing.greedy_routing.RouteResult` (``None`` in
    ``potentials`` encodes ∞ on the wire).  ``pending_hop`` is a hop
    chosen by the previous actor whose distance row lives with the
    receiver: the receiving actor appends the potential ``D[hop, v] + 1``
    from its own shard before forwarding further.
    """

    qid: int
    target: int
    hops_left: int
    path: "tuple[int, ...]" = ()
    potentials: "tuple[float | None, ...]" = ()
    pending_hop: "int | None" = None


@dataclass(frozen=True)
class RouteReply:
    """The completed journey, returned to the querying endpoint."""

    qid: int
    path: "tuple[int, ...]" = ()
    potentials: "tuple[float | None, ...]" = ()
    delivered: bool = False


class LsaDb:
    """Per-actor link-state database: dedup, in-order apply, aging.

    Updates are keyed ``(origin, seq)``; :meth:`accept` stores each at
    most once and never an already-applied seq (the dedup that stops
    re-floods).  :meth:`take_ready` hands back the updates applicable
    *in order* — out-of-order arrivals wait in the pending map until the
    gap fills.  :meth:`missing` names the gap seqs (the anti-entropy
    want-list) and :meth:`purge` ages out pending entries stalled longer
    than ``max_age`` rounds.
    """

    def __init__(self) -> None:
        self._applied: "dict[int, int]" = {}  # origin -> highest contiguous seq
        self._pending: "dict[int, dict[int, tuple[object, int]]]" = {}
        self.duplicates = 0
        self.aged_out = 0

    def applied_seq(self, origin: int) -> int:
        return self._applied.get(origin, 0)

    def accept(self, update, now: int = 0) -> bool:
        """Store *update* unless stale/duplicate; True when it was fresh."""
        seq = int(update.seq)
        if seq < 0:
            raise ProtocolError(f"negative LSA sequence {seq}")
        origin = int(update.origin)
        if seq <= self._applied.get(origin, 0):
            self.duplicates += 1
            return False
        pending = self._pending.setdefault(origin, {})
        if seq in pending:
            self.duplicates += 1
            return False
        pending[seq] = (update, now)
        return True

    def take_ready(self, origin: int) -> list:
        """Pop and return the in-order applicable updates for *origin*."""
        pending = self._pending.get(origin, {})
        ready = []
        nxt = self._applied.get(origin, 0) + 1
        while nxt in pending:
            ready.append(pending.pop(nxt)[0])
            self._applied[origin] = nxt
            nxt += 1
        return ready

    def missing(self, origin: int) -> "tuple[int, ...]":
        """Seqs between applied and the newest pending that never arrived."""
        pending = self._pending.get(origin)
        if not pending:
            return ()
        lo = self._applied.get(origin, 0) + 1
        hi = max(pending)
        return tuple(s for s in range(lo, hi + 1) if s not in pending)

    def purge(self, now: int, max_age: int) -> int:
        """Drop pending updates stalled for more than *max_age* rounds.

        An aged-out update is *not* applied late — the gap before it is
        still open, so applying it would reorder the feed; it is dropped
        and will ride a retransmission once the gap is re-requested.
        Returns how many entries aged out.
        """
        dropped = 0
        for pending in self._pending.values():
            stale = [s for s, (_u, born) in pending.items() if now - born > max_age]
            for s in stale:
                del pending[s]
                dropped += 1
        self.aged_out += dropped
        return dropped


# --------------------------------------------------------------------- #
# codec registrations
# --------------------------------------------------------------------- #


def _pots_to_payload(potentials) -> list:
    # ∞ has no JSON literal; None carries it (decoded back to float birth).
    return [None if p is None or p == float("inf") else p for p in potentials]


def _pots_from_payload(items) -> "tuple[float | None, ...]":
    return tuple(None if p is None else p for p in items)


codec.register_message(
    "hb",
    HelloBeacon,
    to_payload=lambda m: {"o": m.origin, "q": m.seq, "st": m.stamp},
    from_payload=lambda p: HelloBeacon(
        origin=int(p["o"]), seq=int(p.get("q", 0)), stamp=int(p.get("st", 0))
    ),
    link_units=lambda m: 1,
)

codec.register_message(
    "lsa",
    LsaUpdate,
    to_payload=lambda m: {
        "o": m.origin,
        "q": m.seq,
        "t": m.ttl,
        "ga": codec.edges_to_payload(m.g_added),
        "gr": codec.edges_to_payload(m.g_removed),
        "ha": codec.edges_to_payload(m.h_added),
        "hr": codec.edges_to_payload(m.h_removed),
        "j": [int(x) for x in m.nodes_joined],
        "n": m.num_nodes,
        "rb": int(m.rebuilt),
        "st": m.stamp,
        "w": [int(x) for x in m.seen],
    },
    from_payload=lambda p: LsaUpdate(
        origin=int(p["o"]),
        seq=int(p["q"]),
        ttl=int(p.get("t", 0)),
        g_added=codec.edges_from_payload(p.get("ga", ())),
        g_removed=codec.edges_from_payload(p.get("gr", ())),
        h_added=codec.edges_from_payload(p.get("ha", ())),
        h_removed=codec.edges_from_payload(p.get("hr", ())),
        nodes_joined=tuple(int(x) for x in p.get("j", ())),
        num_nodes=int(p.get("n", 0)),
        rebuilt=bool(p.get("rb", 0)),
        stamp=int(p.get("st", 0)),
        seen=tuple(int(x) for x in p.get("w", ())),
    ),
    link_units=lambda m: max(
        1,
        len(m.g_added)
        + len(m.g_removed)
        + len(m.h_added)
        + len(m.h_removed)
        + len(m.nodes_joined),
    ),
)

codec.register_message(
    "full",
    FullTopology,
    to_payload=lambda m: {
        "o": m.origin,
        "q": m.seq,
        "t": m.ttl,
        "n": m.num_nodes,
        "ge": codec.edges_to_payload(m.g_edges),
        "he": codec.edges_to_payload(m.h_edges),
        "st": m.stamp,
        "w": [int(x) for x in m.seen],
    },
    from_payload=lambda p: FullTopology(
        origin=int(p["o"]),
        seq=int(p["q"]),
        ttl=int(p.get("t", 0)),
        num_nodes=int(p.get("n", 0)),
        g_edges=codec.edges_from_payload(p.get("ge", ())),
        h_edges=codec.edges_from_payload(p.get("he", ())),
        stamp=int(p.get("st", 0)),
        seen=tuple(int(x) for x in p.get("w", ())),
    ),
    link_units=lambda m: max(1, len(m.g_edges) + len(m.h_edges)),
)

codec.register_message(
    "rr",
    ResendRequest,
    to_payload=lambda m: {"o": m.origin, "w": [int(s) for s in m.want]},
    from_payload=lambda p: ResendRequest(
        origin=int(p["o"]), want=tuple(int(s) for s in p.get("w", ()))
    ),
    link_units=lambda m: 1,
)

codec.register_message(
    "rq",
    RouteQuery,
    to_payload=lambda m: {
        "i": m.qid,
        "v": m.target,
        "hl": m.hops_left,
        "pa": [int(x) for x in m.path],
        "po": _pots_to_payload(m.potentials),
        "ph": m.pending_hop,
    },
    from_payload=lambda p: RouteQuery(
        qid=int(p["i"]),
        target=int(p["v"]),
        hops_left=int(p["hl"]),
        path=tuple(int(x) for x in p.get("pa", ())),
        potentials=_pots_from_payload(p.get("po", ())),
        pending_hop=None if p.get("ph") is None else int(p["ph"]),
    ),
    link_units=lambda m: 1,
)

codec.register_message(
    "rp",
    RouteReply,
    to_payload=lambda m: {
        "i": m.qid,
        "pa": [int(x) for x in m.path],
        "po": _pots_to_payload(m.potentials),
        "d": int(m.delivered),
    },
    from_payload=lambda p: RouteReply(
        qid=int(p["i"]),
        path=tuple(int(x) for x in p.get("pa", ())),
        potentials=_pots_from_payload(p.get("po", ())),
        delivered=bool(p.get("d", 0)),
    ),
    link_units=lambda m: 1,
)
