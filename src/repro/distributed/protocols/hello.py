"""HELLO protocol: one-exchange neighbor discovery.

Step 1 of Algorithm 3 ("send u to all neighbors and receive identities of
neighbors") in isolation.  Mostly a simulator sanity fixture — the full
RemSpan protocol embeds the same logic — but also the measurement point
for the claim that neighbor knowledge costs exactly one communication
round regardless of the graph.
"""

from __future__ import annotations

from typing import Sequence

from ...graph import Graph
from ..messages import Hello
from ..node import ProtocolNode
from ..simulator import SyncNetwork

__all__ = ["HelloNode", "run_hello"]


class HelloNode(ProtocolNode):
    """Broadcasts its identity once, then collects neighbor identities."""

    def __init__(self, ident: int) -> None:
        super().__init__(ident)
        self.known_neighbors: set[int] = set()

    def on_round(self, round_index: int, inbox: Sequence) -> None:
        if round_index == 1:
            self.broadcast(Hello(origin=self.ident))
            return
        for message in inbox:
            if isinstance(message, Hello):
                self.known_neighbors.add(message.origin)
        self.halted = True


def run_hello(g: Graph) -> "tuple[dict[int, set[int]], int]":
    """Run neighbor discovery; returns (per-node neighbor sets, comm rounds).

    Communication rounds = simulator rounds − 1 (the first round only
    originates traffic), matching the paper's send+receive time unit.
    """
    net = SyncNetwork(g, HelloNode)
    stats = net.run()
    discovered = {u: set(node.known_neighbors) for u, node in net.nodes.items()}
    return discovered, stats.rounds - 1
