"""Scoped flooding with TTL — the information-dissemination primitive.

Steps 2 and 4 of Algorithm 3 flood data "to all nodes in B_G(u, r−1+β)".
A TTL-limited flood achieves exactly that: a message originated with
``ttl = D`` and relayed with ``ttl − 1`` reaches precisely the ball of
radius D around its origin, in D communication rounds.

This module provides the standalone primitive (with duplicate suppression
per origin, as real link-state flooding does via sequence numbers) plus a
reusable :class:`FloodState` mixin the RemSpan protocol embeds.
"""

from __future__ import annotations

from typing import Sequence

from ...graph import Graph
from ..messages import NeighborAdvert
from ..node import ProtocolNode
from ..simulator import SyncNetwork

__all__ = ["FloodState", "ScopedFloodNode", "run_scoped_flood"]


class FloodState:
    """Duplicate-suppressing relay bookkeeping for one flood family.

    Tracks which origins have been seen; :meth:`accept` returns the
    messages to re-broadcast (first copy per origin, TTL permitting).
    """

    def __init__(self) -> None:
        self.seen: dict[int, object] = {}

    def accept(self, messages: Sequence) -> list:
        relays = []
        for m in messages:
            if m.origin in self.seen:
                continue
            self.seen[m.origin] = m
            # A copy received at ttl=1 was the flood's last hop; relay()
            # also answers None at the exhausted boundary (ttl <= 0).
            relayed = m.relay() if m.ttl > 1 else None
            if relayed is not None:
                relays.append(relayed)
        return relays


class ScopedFloodNode(ProtocolNode):
    """Originates one advert with the given TTL and relays others."""

    def __init__(self, ident: int, payload_neighbors: frozenset, ttl: int) -> None:
        super().__init__(ident)
        self.flood = FloodState()
        self._payload = payload_neighbors
        self._ttl = ttl

    def on_round(self, round_index: int, inbox: Sequence) -> None:
        if round_index == 1:
            if self._ttl >= 1:
                advert = NeighborAdvert(
                    origin=self.ident, neighbors=self._payload, ttl=self._ttl
                )
                self.flood.seen[self.ident] = advert  # never relay own advert
                self.broadcast(advert)
            self.halted = True  # halting ≠ deaf: relays still happen below
            return
        self.broadcast_all(self.flood.accept(inbox))


def run_scoped_flood(g: Graph, ttl: int) -> "tuple[dict[int, set[int]], int]":
    """Every node floods its id with *ttl*; returns (who heard whom, rounds).

    The returned mapping gives, for each node u, the set of origins u
    received — which must equal ``B_G(u, ttl)`` minus u itself (the
    property the tests pin down).
    """
    net = SyncNetwork(
        g, lambda u: ScopedFloodNode(u, frozenset(g.neighbors(u)), ttl)
    )
    stats = net.run()
    heard = {u: set(node.flood.seen) - {u} for u, node in net.nodes.items()}
    return heard, stats.rounds - 1
