"""Periodic link-state operation and the T + 2F stabilization bound.

§2.3 closes with: "Algorithm RemSpan can be run as in practical link state
routing protocols by regularly performing its four operations ... every
period of time T ... If a topology change occurs, the computed spanner
will stabilize after a time period of T + 2F where F is the time duration
of a flooding up to distance r − 1 + β."

This module simulates that regime:

* time advances in discrete steps;
* HELLOs are implicit — each node always knows its *current* neighbors
  (HELLO period ≪ T, as in OSPF/OLSR deployments);
* every node (re-)floods its neighbor list every T steps (per-node phase
  offsets supported — real routers are not synchronized);
* a flood covers one hop per step up to radius ``D = r − 1 + β``, so a
  flood takes ``F = D`` steps to complete;
* each node **recomputes its dominating tree whenever its link-state
  database changes** and immediately floods the new tree (computation is
  free; adverts are the cost).

The simulation applies a topology change (edge insertions/removals) at a
chosen step and reports when the *computed spanner* — the union of the
trees each node currently advertises — becomes and stays equal to the
converged spanner of the new topology.  The accompanying test asserts the
stabilization time never exceeds T + 2F.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ...core.domtree import DomTree
from ...errors import ParameterError, ProtocolError
from ...graph import Graph
from .remspan import tree_algorithm

__all__ = ["PeriodicLinkState", "StabilizationReport"]


@dataclass
class _Flood:
    """An in-flight scoped flood: payload + wavefront bookkeeping."""

    origin: int
    payload: object  # frozenset of neighbors, or frozenset of tree edges
    kind: str  # "nbr" | "tree"
    stamp: int
    frontier: set = field(default_factory=set)
    hops_left: int = 0


@dataclass
class StabilizationReport:
    """Outcome of a topology-change experiment."""

    change_step: int
    stabilized_step: "int | None"
    bound_step: int  # change_step + T + 2F
    spanner: Graph

    @property
    def within_bound(self) -> bool:
        return self.stabilized_step is not None and self.stabilized_step <= self.bound_step


class PeriodicLinkState:
    """Steady-state RemSpan over a mutable topology.

    Parameters
    ----------
    g:
        Initial topology (mutated in place by :meth:`apply_change`).
    kind, r, beta, k:
        Tree construction selector, as :func:`~.remspan.tree_algorithm`.
    period:
        The advertisement period T (steps).
    phases:
        Optional per-node phase offsets in ``[0, period)``; default is the
        node id modulo T, i.e. maximally de-synchronized.
    """

    def __init__(
        self,
        g: Graph,
        kind: str = "greedy",
        r: int = 2,
        beta: int = 0,
        k: int = 1,
        period: int = 8,
        phases: "Sequence[int] | None" = None,
    ) -> None:
        if period < 1:
            raise ParameterError(f"period must be ≥ 1, got {period}")
        self.graph = g
        self.algo, self.radius, self.guarantee = tree_algorithm(kind, r=r, beta=beta, k=k)
        self.period = period
        self.flood_time = max(1, self.radius)
        if phases is None:
            self.phases = [u % period for u in g.nodes()]
        else:
            if len(phases) != g.num_nodes:
                raise ProtocolError("need one phase per node")
            self.phases = [p % period for p in phases]
        self.step_count = 0
        # Per-node link-state database: origin -> (stamp, frozenset neighbors)
        self.db: list[dict] = [dict() for _ in g.nodes()]
        self.trees: list["DomTree | None"] = [None] * g.num_nodes
        self._floods: list[_Flood] = []

    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance one time step: propagate floods, originate, recompute."""
        t = self.step_count
        # 1. Propagate in-flight floods one hop (deliveries update DBs).
        still_flying: list[_Flood] = []
        dirty: set[int] = set()
        for fl in self._floods:
            new_frontier: set[int] = set()
            for v in fl.frontier:
                for w in self.graph.neighbors(v):
                    if self._deliver(fl, w):
                        new_frontier.add(w)
            dirty.update(new_frontier)
            fl.frontier = new_frontier
            fl.hops_left -= 1
            if fl.hops_left > 0 and fl.frontier:
                still_flying.append(fl)
        self._floods = still_flying
        # 2. Periodic origination: nodes at their phase flood fresh N(u).
        for u in self.graph.nodes():
            if t % self.period == self.phases[u]:
                payload = frozenset(self.graph.neighbors(u))
                self._ingest(u, u, t, payload)
                dirty.add(u)
                self._floods.append(
                    _Flood(
                        origin=u,
                        payload=payload,
                        kind="nbr",
                        stamp=t,
                        frontier={u},
                        hops_left=self.flood_time,
                    )
                )
        # 3. Recompute trees at nodes whose database changed.
        for u in sorted(dirty):
            self._recompute(u, t)
        self.step_count += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # ------------------------------------------------------------------ #

    def _deliver(self, fl: _Flood, w: int) -> bool:
        """Deliver flood *fl* to node *w*; True when the copy is fresh."""
        if fl.kind == "tree":
            return True  # tree adverts inform routing, not the spanner DB
        entry = self.db[w].get(fl.origin)
        if entry is not None and entry[0] >= fl.stamp:
            return False
        self.db[w][fl.origin] = (fl.stamp, fl.payload)
        return True

    def _ingest(self, node: int, origin: int, stamp: int, payload: frozenset) -> None:
        entry = self.db[node].get(origin)
        if entry is None or entry[0] < stamp:
            self.db[node][origin] = (stamp, payload)

    def _recompute(self, u: int, t: int) -> None:
        """Rebuild T_u from u's database; flood it if it changed.

        Two safeguards real link-state protocols use are applied while
        assembling the local topology (without them a severed adjacency
        lingers forever, because the severed neighbor's fresh floods can no
        longer reach this node):

        * **two-way connectivity check** — when *both* endpoints' adverts
          are in the database, an edge counts only if both list it; a
          one-sided claim is trusted only for edges crossing the
          information horizon (the far endpoint never advertised here);
        * **LSA aging** — entries not refreshed for 2·(T + F) are purged
          (periodic floods refresh every relevant entry each period, so
          only out-of-horizon leftovers ever expire).
        """
        # Always refresh own adjacency (HELLOs are instantaneous).
        self._ingest(u, u, t, frozenset(self.graph.neighbors(u)))
        max_age = 2 * (self.period + self.flood_time)
        self.db[u] = {
            origin: entry
            for origin, entry in self.db[u].items()
            if t - entry[0] <= max_age or origin == u
        }
        mentioned = {u}
        for origin, (_stamp, nbrs) in self.db[u].items():
            mentioned.add(origin)
            mentioned.update(nbrs)
        local = Graph(max(mentioned) + 1)
        for origin, (_stamp, nbrs) in self.db[u].items():
            for v in nbrs:
                if v >= local.num_nodes:
                    continue
                if v in self.db[u] and origin not in self.db[u][v][1]:
                    continue  # two-way check failed: one side retracted
                local.add_edge(origin, v)
        new_tree = self.algo(local, u)
        old = self.trees[u]
        if old is None or set(old.edges()) != set(new_tree.edges()):
            self.trees[u] = new_tree
            self._floods.append(
                _Flood(
                    origin=u,
                    payload=frozenset(new_tree.edges()),
                    kind="tree",
                    stamp=t,
                    frontier={u},
                    hops_left=self.flood_time,
                )
            )

    # ------------------------------------------------------------------ #

    def current_spanner(self) -> Graph:
        """Union of the trees currently computed at each node."""
        h = Graph(self.graph.num_nodes)
        for tree in self.trees:
            if tree is None:
                continue
            for a, b in tree.edges():
                if self.graph.has_edge(a, b):  # stale tree edges may be gone
                    h.add_edge(a, b)
        return h

    def converged_spanner(self, g: "Graph | None" = None) -> Graph:
        """The centralized union-of-trees for the (current) topology."""
        g = g if g is not None else self.graph
        h = Graph(g.num_nodes)
        for u in g.nodes():
            for a, b in self.algo(g, u).edges():
                h.add_edge(a, b)
        return h

    # ------------------------------------------------------------------ #

    def stabilization_experiment(
        self,
        warmup: int,
        change: "Callable[[Graph], None]",
        horizon: "int | None" = None,
    ) -> StabilizationReport:
        """Run to steady state, apply *change*, report stabilization time.

        *change* mutates ``self.graph`` in place (add/remove edges).  The
        experiment then steps until the computed spanner equals the new
        converged spanner, or until *horizon* steps past the change
        (default: 2·(T + 2F) for slack in the failure report).
        """
        self.run(warmup)
        change(self.graph)
        change_step = self.step_count
        target = self.converged_spanner()
        bound = change_step + self.period + 2 * self.flood_time
        if horizon is None:
            horizon = 2 * (self.period + 2 * self.flood_time)
        stabilized: "int | None" = None
        for _ in range(horizon):
            self.step()
            if self.current_spanner() == target:
                stabilized = self.step_count
                break
        return StabilizationReport(
            change_step=change_step,
            stabilized_step=stabilized,
            bound_step=bound,
            spanner=self.current_spanner(),
        )
