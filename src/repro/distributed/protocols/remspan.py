"""Algorithm 3 — ``RemSpan_{r,β}`` as a real message-passing protocol.

The four steps, per node u:

1. send *u* to all neighbors; receive identities            (1 round)
2. flood N(u) to all nodes in ``B_G(u, r−1+β)``             (r−1+β rounds)
3. locally compute an (r, β)-dominating tree T_u            (0 rounds)
4. flood T_u to all nodes in ``B_G(u, r−1+β)``              (r−1+β rounds)

Total communication time ``2r − 1 + 2β`` — the constant the paper reports
in §2.3; the runner asserts it.  The remote-spanner is the union of all
T_u, and every node additionally learns the trees of its r−1+β
neighborhood (what it needs to route, §1).

The crucial reproduction point is **locality**: step 3 runs the *same*
centralized construction code (Algorithms 1/2/4/5 from :mod:`repro.core`)
on a graph assembled purely from the advertisements received in step 2 —
edges incident to ``B_G(u, r−1+β)``.  The integration tests assert the
distributed trees equal the centralized ones node-for-node, which is the
paper's "no synchronization between node decisions is necessary" claim in
executable form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ...core.domtree import DomTree
from ...core.domtree_greedy import dom_tree_greedy
from ...core.domtree_kcover import dom_tree_kcover
from ...core.domtree_kmis import dom_tree_kmis
from ...core.domtree_mis import dom_tree_mis
from ...core.remote_spanner import RemoteSpanner, StretchGuarantee
from ...errors import ParameterError
from ...graph import Graph
from ..messages import Hello, NeighborAdvert, TreeAdvert
from ..metrics import SimStats
from ..node import ProtocolNode
from ..simulator import SyncNetwork
from .flood import FloodState

__all__ = ["RemSpanNode", "DistributedResult", "run_remspan", "tree_algorithm"]

#: Signature of a local tree construction: (local graph, root) -> DomTree.
TreeAlgorithm = "Callable[[Graph, int], DomTree]"


def tree_algorithm(
    kind: str, r: int = 2, beta: int = 0, k: int = 1
) -> "tuple[Callable[[Graph, int], DomTree], int, StretchGuarantee]":
    """Resolve a named construction to (fn, flood radius D, guarantee).

    ``kind`` ∈ {"greedy", "mis", "kcover", "kmis"} maps to Algorithms
    1, 2, 4, 5.  D = r − 1 + β is the information/advertisement radius.
    """
    if kind == "greedy":
        if r < 2 or beta < 0:
            raise ParameterError(f"greedy needs r ≥ 2, β ≥ 0 (got {r}, {beta})")
        eps = 1.0 / (r - 1)
        guar = StretchGuarantee(1.0 + eps, 1.0 - 2.0 * eps, 1) if beta >= 1 else StretchGuarantee(1.0, 0.0, 1)
        return (lambda g, u: dom_tree_greedy(g, u, r, beta)), r - 1 + beta, guar
    if kind == "mis":
        if r < 2:
            raise ParameterError(f"mis needs r ≥ 2 (got {r})")
        eps = 1.0 / (r - 1)
        return (lambda g, u: dom_tree_mis(g, u, r)), r, StretchGuarantee(1.0 + eps, 1.0 - 2.0 * eps, 1)
    if kind == "kcover":
        return (lambda g, u: dom_tree_kcover(g, u, k)), 1, StretchGuarantee(1.0, 0.0, k)
    if kind == "kmis":
        return (lambda g, u: dom_tree_kmis(g, u, k)), 2, StretchGuarantee(2.0, -1.0, min(k, 2))
    raise ParameterError(f"unknown tree algorithm {kind!r}")


class RemSpanNode(ProtocolNode):
    """One router executing RemSpan.

    State machine phases (rounds are simulator rounds; communication
    rounds are one fewer — round 1 only originates):

    * round 1: broadcast HELLO
    * round 2: record neighbors, originate NeighborAdvert (TTL = D)
    * rounds 2..D+1: relay neighbor adverts
    * round D+2: local database complete → compute T_u, originate
      TreeAdvert (TTL = D)
    * rounds D+2..2D+1: relay tree adverts; halt at 2D+2 (nothing left)

    For D = 0 (the k-cover star with its 1-hop information needs — wait,
    kcover has D = 1; D = 0 never occurs since r ≥ 2) the phases collapse
    gracefully anyway.
    """

    def __init__(self, ident: int, algo, ttl: int) -> None:
        super().__init__(ident)
        self._algo = algo
        self._ttl = ttl
        self.neighbors: set[int] = set()
        self.neighbor_lists: dict[int, frozenset] = {}
        self.tree: "DomTree | None" = None
        self.known_trees: dict[int, frozenset] = {}
        self._nbr_flood = FloodState()
        self._tree_flood = FloodState()
        self._compute_round = self._ttl + 2  # all D-hop adverts delivered

    # -------------------------------------------------------------- #

    def on_round(self, round_index: int, inbox: Sequence) -> None:
        for message in inbox:
            if isinstance(message, Hello):
                self.neighbors.add(message.origin)
        nbr_adverts = [m for m in inbox if isinstance(m, NeighborAdvert)]
        tree_adverts = [m for m in inbox if isinstance(m, TreeAdvert)]
        for m in nbr_adverts:
            if m.origin not in self.neighbor_lists:
                self.neighbor_lists[m.origin] = m.neighbors
        for m in tree_adverts:
            if m.origin not in self.known_trees:
                self.known_trees[m.origin] = m.edges
        self.broadcast_all(self._nbr_flood.accept(nbr_adverts))
        self.broadcast_all(self._tree_flood.accept(tree_adverts))

        if round_index == 1:
            self.broadcast(Hello(origin=self.ident))
            return
        if round_index == 2:
            self.neighbor_lists[self.ident] = frozenset(self.neighbors)
            advert = NeighborAdvert(
                origin=self.ident, neighbors=frozenset(self.neighbors), ttl=self._ttl
            )
            self._nbr_flood.seen[self.ident] = advert  # never relay own advert
            self.broadcast(advert)
            return
        if round_index == self._compute_round:
            local = self._local_graph()
            self.tree = self._algo(local, self.ident)
            self.known_trees[self.ident] = frozenset(self.tree.edges())
            advert = TreeAdvert(
                origin=self.ident, edges=frozenset(self.tree.edges()), ttl=self._ttl
            )
            self._tree_flood.seen[self.ident] = advert  # never relay own advert
            self.broadcast(advert)
            return
        if round_index >= self._compute_round + self._ttl:
            self.halted = True

    # -------------------------------------------------------------- #

    def _local_graph(self) -> Graph:
        """Assemble the partial topology known from received adverts.

        Contains every edge incident to ``B(u, D)`` — sufficient for the
        construction (all BFS cutoffs are ≤ D+1; see module docstring).
        The node count is conservatively ``max id + 1`` over everything
        mentioned; ids beyond the local horizon stay isolated, which the
        cutoff-limited constructions never look at.
        """
        mentioned = {self.ident}
        for origin, nbrs in self.neighbor_lists.items():
            mentioned.add(origin)
            mentioned.update(nbrs)
        g = Graph(max(mentioned) + 1)
        for origin, nbrs in self.neighbor_lists.items():
            for v in nbrs:
                g.add_edge(origin, v)
        return g


@dataclass
class DistributedResult:
    """Everything a distributed RemSpan run produces."""

    spanner: RemoteSpanner
    stats: SimStats
    communication_rounds: int  # paper's time unit: send+receive = 1
    expected_rounds: int  # 2r − 1 + 2β (i.e. 1 + 2·D)
    nodes: dict  # ident -> RemSpanNode, for knowledge inspection


def run_remspan(
    g: Graph, kind: str = "greedy", r: int = 2, beta: int = 0, k: int = 1
) -> DistributedResult:
    """Execute RemSpan on *g* and assemble the spanner from the node trees."""
    algo, ttl, guarantee = tree_algorithm(kind, r=r, beta=beta, k=k)
    net = SyncNetwork(g, lambda u: RemSpanNode(u, algo, ttl))
    stats = net.run()
    h = Graph(g.num_nodes)
    trees: dict[int, DomTree] = {}
    for u, node in net.nodes.items():
        assert node.tree is not None, "protocol quiesced without computing a tree"
        trees[u] = node.tree
        for a, b in node.tree.edges():
            h.add_edge(a, b)
    spanner = RemoteSpanner(
        graph=h, trees=trees, guarantee=guarantee, method=f"distributed-{kind}"
    )
    return DistributedResult(
        spanner=spanner,
        stats=stats,
        communication_rounds=stats.rounds - 1,
        expected_rounds=1 + 2 * ttl,
        nodes=dict(net.nodes),
    )
