"""Protocols running on the synchronous simulator.

``hello`` and ``flood`` are the primitives; ``remspan`` is Algorithm 3
(one-shot construction, 2r−1+2β communication rounds); ``link_state`` is
the periodic steady-state regime with the T+2F stabilization bound.
"""

from .hello import HelloNode, run_hello
from .flood import FloodState, ScopedFloodNode, run_scoped_flood
from .remspan import DistributedResult, RemSpanNode, run_remspan, tree_algorithm
from .link_state import PeriodicLinkState, StabilizationReport

__all__ = [
    "HelloNode",
    "run_hello",
    "FloodState",
    "ScopedFloodNode",
    "run_scoped_flood",
    "DistributedResult",
    "RemSpanNode",
    "run_remspan",
    "tree_algorithm",
    "PeriodicLinkState",
    "StabilizationReport",
]
