"""One codec for every protocol message — bytes and link units, one truth.

Before this module, message-size accounting drifted in two places: each
dataclass carried its own ``size`` property and ``size_in_links`` blindly
trusted it, so the lock-step simulator and any wire-level benchmark could
silently count different bytes for the same advert.  Now every message
type registers here once with three things:

* a stable wire ``kind`` tag,
* a payload round-trip (``to_payload`` / ``from_payload``) used by
  :func:`encode` / :func:`decode` — compact canonical JSON (sorted keys,
  no whitespace), zero dependencies, deterministic bytes for equal
  messages,
* a ``link_units`` cost — the paper's "advertised link" unit the
  simulator's ``links_advertised`` counter and the flooding-overhead
  discussion use.

:func:`size_in_links` in :mod:`~repro.distributed.messages` and the
transports' byte counters both resolve through this registry, so
``SyncNetwork`` statistics and ``BENCH_wire.json`` measure the same
messages with the same ruler.  The encoding is framing-free: transports
own message boundaries (the stream transports length-prefix each frame).
"""

from __future__ import annotations

import json
from typing import Callable

from ..errors import ProtocolError

__all__ = [
    "WIRE_SCHEMA",
    "decode",
    "encode",
    "kind_of",
    "link_units",
    "register_message",
    "registered_kinds",
    "wire_bytes",
]

#: Stamped into every encoded frame so a reader can reject foreign bytes.
WIRE_SCHEMA = "repro.wire/1"

_BY_KIND: "dict[str, tuple[type, Callable, Callable, Callable]]" = {}
_BY_TYPE: "dict[type, tuple[str, Callable, Callable, Callable]]" = {}


def register_message(
    kind: str,
    cls: type,
    *,
    to_payload: "Callable[[object], dict]",
    from_payload: "Callable[[dict], object]",
    link_units: "Callable[[object], int]",
) -> None:
    """Register one message type under a stable wire tag.

    Raises :class:`~repro.errors.ProtocolError` on a duplicate tag or
    type — two registrations for one message would mean two accounting
    rules, exactly the drift this module exists to kill.
    """
    if kind in _BY_KIND:
        raise ProtocolError(f"wire kind {kind!r} registered twice")
    if cls in _BY_TYPE:
        raise ProtocolError(f"message type {cls.__name__} registered twice")
    _BY_KIND[kind] = (cls, to_payload, from_payload, link_units)
    _BY_TYPE[cls] = (kind, to_payload, from_payload, link_units)


def registered_kinds() -> "tuple[str, ...]":
    return tuple(sorted(_BY_KIND))


def _registration(message) -> "tuple[str, Callable, Callable, Callable]":
    try:
        return _BY_TYPE[type(message)]
    except KeyError:
        raise ProtocolError(
            f"unregistered message type {type(message).__name__} "
            "(every protocol message registers with repro.distributed.codec)"
        ) from None


def kind_of(message) -> str:
    """The wire tag *message* travels under."""
    return _registration(message)[0]


def link_units(message) -> int:
    """Message cost in the paper's advertised-link units.

    The single source of truth: ``Hello.size``/``size_in_links`` and the
    transports all resolve here.
    """
    kind, _to, _from, units = _registration(message)
    return int(units(message))


def encode(message) -> bytes:
    """Canonical wire bytes for *message* (compact sorted-key JSON)."""
    kind, to_payload, _from, _units = _registration(message)
    doc = {"s": WIRE_SCHEMA, "k": kind, "p": to_payload(message)}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode(data: bytes):
    """The message *data* encodes; raises ProtocolError on foreign bytes."""
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable wire frame: {exc}") from None
    if not isinstance(doc, dict) or doc.get("s") != WIRE_SCHEMA:
        raise ProtocolError(f"wire frame is not {WIRE_SCHEMA}")
    kind = doc.get("k")
    if kind not in _BY_KIND:
        raise ProtocolError(f"unknown wire kind {kind!r}")
    _cls, _to, from_payload, _units = _BY_KIND[kind]
    return from_payload(doc.get("p") or {})


def wire_bytes(message) -> int:
    """Exact on-the-wire size of *message* under this codec."""
    return len(encode(message))


# --------------------------------------------------------------------- #
# payload helpers shared by the registering modules
# --------------------------------------------------------------------- #


def edges_to_payload(edges) -> "list[list[int]]":
    """A canonical (sorted) JSON shape for an edge collection."""
    return [[int(u), int(v)] for u, v in sorted(edges)]


def edges_from_payload(items) -> "tuple[tuple[int, int], ...]":
    return tuple((int(u), int(v)) for u, v in items)
