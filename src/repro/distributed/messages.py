"""Message types for the synchronous message-passing simulator.

The protocols of the paper exchange three kinds of information (Algorithm 3):
node identities (HELLO), neighbor lists (link-state advertisements), and
computed dominating trees.  Every message is a frozen dataclass so protocol
code cannot mutate in-flight messages, and each knows its own *size* in
"advertised link" units — the cost model the paper's overhead discussion
uses (flooding cost ∝ number of links advertised).

Sizing is delegated to :mod:`~repro.distributed.codec`: each type
registers its link-unit rule and payload round-trip there once, so the
lock-step simulator (``size_in_links``) and the wire-level transports /
benchmarks (``codec.wire_bytes``) count the same messages with the same
ruler.  ``relay()`` returns ``None`` once the TTL is exhausted — a
message received at ``ttl <= 0`` must be dropped, never re-emitted with
a negative TTL that would flood forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import codec

__all__ = ["Hello", "NeighborAdvert", "TreeAdvert", "size_in_links"]


@dataclass(frozen=True)
class Hello:
    """Round-1 neighbor discovery probe."""

    origin: int

    @property
    def size(self) -> int:
        return codec.link_units(self)


@dataclass(frozen=True)
class NeighborAdvert:
    """A scoped-flooded link-state advertisement: *origin*'s neighbor list.

    ``ttl`` counts the remaining re-broadcast hops; ``stamp`` carries the
    origination time for the periodic protocol's freshness bookkeeping.
    """

    origin: int
    neighbors: frozenset = field(default_factory=frozenset)
    ttl: int = 0
    stamp: int = 0

    @property
    def size(self) -> int:
        return codec.link_units(self)

    def relay(self) -> "NeighborAdvert | None":
        """The copy a relaying node re-broadcasts (TTL decremented).

        ``None`` once the TTL is exhausted: relaying at ``ttl <= 0`` must
        drop the message, not emit a ``ttl = -1`` copy.
        """
        if self.ttl <= 0:
            return None
        return NeighborAdvert(
            origin=self.origin, neighbors=self.neighbors, ttl=self.ttl - 1, stamp=self.stamp
        )


@dataclass(frozen=True)
class TreeAdvert:
    """A scoped-flooded dominating tree: *origin*'s T_u as an edge set."""

    origin: int
    edges: frozenset = field(default_factory=frozenset)
    ttl: int = 0
    stamp: int = 0

    @property
    def size(self) -> int:
        return codec.link_units(self)

    def relay(self) -> "TreeAdvert | None":
        if self.ttl <= 0:
            return None
        return TreeAdvert(origin=self.origin, edges=self.edges, ttl=self.ttl - 1, stamp=self.stamp)


def size_in_links(message) -> int:
    """Uniform size accessor for accounting (resolved through the codec)."""
    return codec.link_units(message)


# --------------------------------------------------------------------- #
# codec registrations: one accounting + encoding rule per message type
# --------------------------------------------------------------------- #

codec.register_message(
    "hello",
    Hello,
    to_payload=lambda m: {"o": m.origin},
    from_payload=lambda p: Hello(origin=int(p["o"])),
    link_units=lambda m: 1,
)

codec.register_message(
    "nbr",
    NeighborAdvert,
    to_payload=lambda m: {
        "o": m.origin,
        "n": sorted(int(x) for x in m.neighbors),
        "t": m.ttl,
        "st": m.stamp,
    },
    from_payload=lambda p: NeighborAdvert(
        origin=int(p["o"]),
        neighbors=frozenset(int(x) for x in p.get("n", ())),
        ttl=int(p.get("t", 0)),
        stamp=int(p.get("st", 0)),
    ),
    link_units=lambda m: max(1, len(m.neighbors)),
)

codec.register_message(
    "tree",
    TreeAdvert,
    to_payload=lambda m: {
        "o": m.origin,
        "e": codec.edges_to_payload(m.edges),
        "t": m.ttl,
        "st": m.stamp,
    },
    from_payload=lambda p: TreeAdvert(
        origin=int(p["o"]),
        edges=frozenset(codec.edges_from_payload(p.get("e", ()))),
        ttl=int(p.get("t", 0)),
        stamp=int(p.get("st", 0)),
    ),
    link_units=lambda m: max(1, len(m.edges)),
)
