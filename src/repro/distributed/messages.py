"""Message types for the synchronous message-passing simulator.

The protocols of the paper exchange three kinds of information (Algorithm 3):
node identities (HELLO), neighbor lists (link-state advertisements), and
computed dominating trees.  Every message is a frozen dataclass so protocol
code cannot mutate in-flight messages, and each knows its own *size* in
"advertised link" units — the cost model the paper's overhead discussion
uses (flooding cost ∝ number of links advertised).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Hello", "NeighborAdvert", "TreeAdvert", "size_in_links"]


@dataclass(frozen=True)
class Hello:
    """Round-1 neighbor discovery probe."""

    origin: int

    @property
    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class NeighborAdvert:
    """A scoped-flooded link-state advertisement: *origin*'s neighbor list.

    ``ttl`` counts the remaining re-broadcast hops; ``stamp`` carries the
    origination time for the periodic protocol's freshness bookkeeping.
    """

    origin: int
    neighbors: frozenset = field(default_factory=frozenset)
    ttl: int = 0
    stamp: int = 0

    @property
    def size(self) -> int:
        return max(1, len(self.neighbors))

    def relay(self) -> "NeighborAdvert":
        """The copy a relaying node re-broadcasts (TTL decremented)."""
        return NeighborAdvert(
            origin=self.origin, neighbors=self.neighbors, ttl=self.ttl - 1, stamp=self.stamp
        )


@dataclass(frozen=True)
class TreeAdvert:
    """A scoped-flooded dominating tree: *origin*'s T_u as an edge set."""

    origin: int
    edges: frozenset = field(default_factory=frozenset)
    ttl: int = 0
    stamp: int = 0

    @property
    def size(self) -> int:
        return max(1, len(self.edges))

    def relay(self) -> "TreeAdvert":
        return TreeAdvert(origin=self.origin, edges=self.edges, ttl=self.ttl - 1, stamp=self.stamp)


def size_in_links(message) -> int:
    """Uniform size accessor for accounting (all message types have .size)."""
    return message.size
