"""Transports for the actor tier: loopback, TCP and Unix-domain streams.

The lock-step :class:`~repro.distributed.simulator.SyncNetwork` delivers
messages by list-append; the actor tier instead sends *frames* through a
:class:`Transport`, so the same protocol code runs deterministically
in-process (:class:`LoopbackTransport`) and over real sockets
(:class:`TcpTransport` / :class:`UdsTransport`).  All three share one
contract:

* every frame is :mod:`~repro.distributed.codec` bytes — byte and
  link-unit accounting lands in a :class:`~repro.distributed.metrics.WireStats`
  with the same ruler the simulator uses;
* the fault plane's :func:`repro.faults.on_wire_send` is consulted per
  frame *before* transmission, so ``lsa.drop``/``lsa.delay`` plans
  behave identically on loopback and sockets (delays are measured in
  transport rounds — virtual time — released by :meth:`Transport.tick`);
* delivery order between a fixed (src, dst) pair is FIFO; the loopback
  transport is additionally globally deterministic (single process, no
  scheduler races), which is what the convergence property suite runs on.

The stream transports are hub-and-spoke: one asyncio server routes
length-prefixed frames between per-endpoint client connections.  All
endpoints live in the calling process (the tier is an actor
architecture, not a deployment), so :meth:`Transport.pending` can count
in-flight frames exactly — the quiescence detector depends on it.

This module is inside the RL013 lint boundary: no blocking primitives
(``time.sleep``, sync queue ``get``, raw ``socket.recv``) appear in its
coroutines — only ``asyncio`` awaitables.
"""

from __future__ import annotations

import asyncio
import os
import struct
import tempfile
from collections import deque

from .. import faults
from ..errors import ProtocolError
from . import codec
from .metrics import WireStats

__all__ = [
    "LoopbackTransport",
    "TcpTransport",
    "Transport",
    "UdsTransport",
    "make_transport",
]

_HEADER = struct.Struct(">II")  # frame: payload length, destination id


class Transport:
    """Common frame plumbing: codec accounting, fault verdicts, delay queue.

    Subclasses implement :meth:`_transmit` (move encoded bytes toward
    *dst*'s inbox) and may extend :meth:`start`/:meth:`close`/:meth:`_drain`.
    """

    def __init__(self) -> None:
        self.stats = WireStats()
        self._round = 0
        self._inboxes: "dict[int, deque]" = {}
        # (release round, insertion index, dst, bytes): index keeps the
        # release order deterministic among frames maturing together.
        self._delayed: "list[tuple[int, int, int, bytes]]" = []
        self._delay_counter = 0

    # -- lifecycle ----------------------------------------------------- #

    def register(self, endpoint: int) -> None:
        """Declare *endpoint* before :meth:`start`; creates its inbox."""
        if endpoint in self._inboxes:
            raise ProtocolError(f"endpoint {endpoint} registered twice")
        self._inboxes[int(endpoint)] = deque()

    def endpoints(self) -> "tuple[int, ...]":
        return tuple(sorted(self._inboxes))

    async def start(self) -> None:
        """Bring up transport machinery (servers, connections)."""

    async def close(self) -> None:
        """Tear down transport machinery."""

    # -- data path ----------------------------------------------------- #

    async def send(self, src: int, dst: int, message) -> None:
        """Frame *message* toward *dst*, subject to the fault plane."""
        if dst not in self._inboxes:
            raise ProtocolError(f"send to unregistered endpoint {dst}")
        data = codec.encode(message)
        verdict, amount = ("send", 0.0)
        if faults.active:
            verdict, amount = faults.on_wire_send(codec.kind_of(message))
        if verdict == "drop":
            self.stats.record_dropped()
            return
        if verdict == "delay":
            self.stats.record_delayed()
            release = self._round + max(1, int(amount))
            self._delayed.append((release, self._delay_counter, dst, data))
            self._delay_counter += 1
            return
        self.stats.record_send(len(data), codec.link_units(message))
        await self._transmit(src, dst, data)

    async def recv_all(self, endpoint: int) -> list:
        """Drain and return *endpoint*'s currently-delivered messages."""
        inbox = self._inboxes[endpoint]
        out = list(inbox)
        inbox.clear()
        return out

    async def tick(self) -> None:
        """Advance one transport round: release matured delays, settle."""
        self._round += 1
        self.stats.record_round()
        due = sorted(d for d in self._delayed if d[0] <= self._round)
        self._delayed = [d for d in self._delayed if d[0] > self._round]
        for _release, _idx, dst, data in due:
            # A delayed frame is counted when it finally transmits.
            self.stats.record_send(len(data), codec.link_units(codec.decode(data)))
            await self._transmit(-1, dst, data)
        await self._drain()

    def pending(self) -> int:
        """Frames accepted but not yet readable from any inbox."""
        return len(self._delayed) + self._in_flight()

    # -- subclass surface ---------------------------------------------- #

    async def _transmit(self, src: int, dst: int, data: bytes) -> None:
        raise NotImplementedError

    async def _drain(self) -> None:
        """Let in-flight frames settle into inboxes (no-op on loopback)."""

    def _in_flight(self) -> int:
        return 0


class LoopbackTransport(Transport):
    """In-process transport: encode → decode → inbox, zero scheduling.

    Every frame still round-trips through the codec (a loopback run
    exercises exactly the bytes a socket run would carry), but delivery
    is an immediate append — the transport the deterministic convergence
    suite and the wire benchmark run on.
    """

    async def _transmit(self, src: int, dst: int, data: bytes) -> None:
        self._inboxes[dst].append(codec.decode(data))


class _StreamTransport(Transport):
    """Hub-and-spoke asyncio streams: one router, one connection per endpoint.

    Frames are ``>II``-prefixed (payload length, destination id).  Each
    endpoint's first frame registers its id with the router; thereafter
    the router forwards every frame to the destination's connection and
    a per-endpoint reader task decodes arrivals into the local inbox.
    """

    def __init__(self) -> None:
        super().__init__()
        self._server: "asyncio.AbstractServer | None" = None
        self._writers: "dict[int, asyncio.StreamWriter]" = {}  # client side
        self._route: "dict[int, asyncio.StreamWriter]" = {}  # router side
        self._readers: "list[asyncio.Task]" = []
        self._router_tasks: "set[asyncio.Task]" = set()
        self._sent = 0
        self._delivered = 0

    # subclasses provide the listening socket
    async def _serve(self, handler) -> "asyncio.AbstractServer":
        raise NotImplementedError

    async def _connect(self) -> "tuple[asyncio.StreamReader, asyncio.StreamWriter]":
        raise NotImplementedError

    async def start(self) -> None:
        self._server = await self._serve(self._route_connection)
        for endpoint in self.endpoints():
            reader, writer = await self._connect()
            writer.write(_HEADER.pack(0, endpoint))  # registration frame
            await writer.drain()
            self._writers[endpoint] = writer
            task = asyncio.ensure_future(self._pump_inbox(endpoint, reader))
            self._readers.append(task)
        # Barrier: a frame sent before the router has processed its
        # destination's registration would be dropped on the floor and
        # wedge the exact in-flight accounting — wait them all in.
        for _ in range(400):
            if len(self._route) == len(self._inboxes):
                return
            await asyncio.sleep(0.005)
        raise ProtocolError(
            f"router registered {len(self._route)}/{len(self._inboxes)} endpoints"
        )

    async def _route_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._router_tasks.add(task)
        try:
            head = await reader.readexactly(_HEADER.size)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        length, endpoint = _HEADER.unpack(head)
        if length:  # registration frames carry no payload
            writer.close()
            return
        self._route[endpoint] = writer
        try:
            while True:
                head = await reader.readexactly(_HEADER.size)
                length, dst = _HEADER.unpack(head)
                payload = await reader.readexactly(length) if length else b""
                out = self._route.get(dst)
                if out is not None:
                    out.write(_HEADER.pack(length, dst) + payload)
                    await out.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:
            pass  # transport shutdown; the server's done-callback must not re-raise

    async def _pump_inbox(self, endpoint: int, reader) -> None:
        try:
            while True:
                head = await reader.readexactly(_HEADER.size)
                length, _dst = _HEADER.unpack(head)
                payload = await reader.readexactly(length) if length else b""
                self._inboxes[endpoint].append(codec.decode(payload))
                self._delivered += 1
        except (asyncio.IncompleteReadError, ConnectionError):
            pass

    async def _transmit(self, src: int, dst: int, data: bytes) -> None:
        # Delayed releases carry src=-1; any connection may carry them.
        writer = self._writers.get(src) or next(iter(self._writers.values()))
        writer.write(_HEADER.pack(len(data), dst) + data)
        await writer.drain()
        self._sent += 1

    def _in_flight(self) -> int:
        return self._sent - self._delivered

    async def _drain(self) -> None:
        # All endpoints share this process: in-flight counts are exact,
        # so settle until the router and inbox pumps catch up.
        for _ in range(400):
            if not self._in_flight():
                return
            await asyncio.sleep(0.005)
        raise ProtocolError(
            f"stream transport failed to settle: {self._in_flight()} frames in flight"
        )

    async def close(self) -> None:
        for task in (*self._readers, *self._router_tasks):
            task.cancel()
        await asyncio.gather(
            *self._readers, *self._router_tasks, return_exceptions=True
        )
        for writer in self._writers.values():
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._writers.clear()
        self._route.clear()
        self._readers.clear()
        self._router_tasks.clear()


class TcpTransport(_StreamTransport):
    """Stream transport over a localhost TCP socket (ephemeral port)."""

    def __init__(self, host: str = "127.0.0.1") -> None:
        super().__init__()
        self.host = host
        self.port: "int | None" = None

    async def _serve(self, handler):
        server = await asyncio.start_server(handler, self.host, 0)
        self.port = server.sockets[0].getsockname()[1]
        return server

    async def _connect(self):
        return await asyncio.open_connection(self.host, self.port)


class UdsTransport(_StreamTransport):
    """Stream transport over a Unix-domain socket in a private tempdir."""

    def __init__(self, path: "str | None" = None) -> None:
        super().__init__()
        self._tmpdir: "str | None" = None
        if path is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-uds-")
            path = os.path.join(self._tmpdir, "wire.sock")
        self.path = path

    async def _serve(self, handler):
        return await asyncio.start_unix_server(handler, self.path)

    async def _connect(self):
        return await asyncio.open_unix_connection(self.path)

    async def close(self) -> None:
        await super().close()
        try:
            os.unlink(self.path)
        except OSError:
            pass
        if self._tmpdir is not None:
            try:
                os.rmdir(self._tmpdir)
            except OSError:
                pass


def make_transport(name: str) -> Transport:
    """The transport the CLI's ``--transport {loop,tcp,uds}`` names."""
    if name == "loop":
        return LoopbackTransport()
    if name == "tcp":
        return TcpTransport()
    if name == "uds":
        return UdsTransport()
    raise ProtocolError(f"unknown transport {name!r} (want loop, tcp or uds)")
