"""The distributed serving tier: sharded table actors over a transport.

Where :class:`~repro.distributed.simulator.SyncNetwork` simulates *the
paper's protocols* (one node per simulated router, lock-step rounds),
this module serves *the maintained tables* from a tier of asyncio actors:

* the **feed driver** owns the serial :class:`~repro.dynamic.serving.\
  RoutingService` (the ground truth) and republishes its per-tick
  :class:`~repro.dynamic.serving.ServeDelta` as sequence-numbered
  :class:`~repro.distributed.wire.LsaUpdate` floods — net maintainer
  deltas on the wire, never full topology (the
  :class:`~repro.distributed.wire.FullTopology` path exists as the
  cold-start bootstrap and the benchmark's naive baseline);
* **shard actors** (``owner(u) = u % shards``) each replicate (G, H)
  from the LSA stream but own only their shard's distance rows and
  next-hop tables, recomputed at quiescence with the *same* primitives
  the serial service uses (``batched_bfs`` + ``project_table_row``) — so
  a converged actor's rows are bit-for-bit the service's rows, which the
  convergence property suite asserts;
* actors sit on a **ring overlay**: updates enter at ``seq % shards``
  and flood both directions with TTL + loop-window headers, HELLO
  beacons carry applied sequence numbers between ring neighbors
  (liveness via :data:`~repro.distributed.wire.HELLO_TIMEOUT`, and
  anti-entropy: a beacon ahead of the local database triggers a
  :class:`~repro.distributed.wire.ResendRequest` to the driver, which
  retransmits from its log — the mechanism that makes convergence hold
  under ``lsa.drop``/``lsa.delay`` fault plans);
* ``route()`` runs :func:`~repro.routing.greedy_routing.route_served`'s
  exact decision loop *across* actors: each next-hop lookup happens at
  the owner of the current node, the hop's potential is appended by the
  owner of the hop (the ``pending_hop`` leg of
  :class:`~repro.distributed.wire.RouteQuery`), and the finished
  journey returns as a standard
  :class:`~repro.routing.greedy_routing.RouteResult` — identical path,
  delivery and potentials to the serial call (property-tested).

The public surface is synchronous (``start``/``apply_tick``/``quiesce``/
``route``/``close`` drive a private event loop) so the CLI, tests and
benchmarks stay plain functions; all message-passing code is ``async``
and inside the RL013 lint boundary — no blocking primitives.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

import numpy as np

from ..dynamic.serving import RoutingService, ServeDelta
from ..errors import ParameterError, ProtocolError
from ..graph import Graph, batched_bfs
from ..routing.greedy_routing import RouteResult
from ..routing.tables import project_table_row
from .transport import LoopbackTransport, Transport
from .wire import (
    HELLO_TIMEOUT,
    FullTopology,
    HelloBeacon,
    LsaDb,
    LsaUpdate,
    ResendRequest,
    RouteQuery,
    RouteReply,
)

__all__ = ["ActorSystem", "ShardActor"]


class ShardActor:
    """One table shard: a (G, H) replica plus the rows it owns."""

    def __init__(self, ident: int, system: "ActorSystem") -> None:
        self.ident = ident
        self.system = system
        self.db = LsaDb()
        self.g_edges: "set[tuple[int, int]]" = set()
        self.h_edges: "set[tuple[int, int]]" = set()
        self.num_nodes = 0
        self.dist = np.empty((0, 0), dtype=np.int32)
        self.tables = np.empty((0, 0), dtype=np.int32)
        self._topo_version = 0
        self._computed_version = -1
        self.last_heard: "dict[int, int]" = {}  # ring peer -> last beacon round
        self.suspects: "set[int]" = set()
        self.recomputes = 0

    # -- replica maintenance ------------------------------------------- #

    def _apply_update(self, update) -> None:
        if isinstance(update, FullTopology):
            self.num_nodes = update.num_nodes
            self.g_edges = set(update.g_edges)
            self.h_edges = set(update.h_edges)
        else:
            self.num_nodes = max(self.num_nodes, update.num_nodes)
            for node in update.nodes_joined:
                self.num_nodes = max(self.num_nodes, node + 1)
            self.g_edges.difference_update(update.g_removed)
            self.g_edges.update(update.g_added)
            self.h_edges.difference_update(update.h_removed)
            self.h_edges.update(update.h_added)
        self._topo_version += 1

    def applied_seq(self) -> int:
        return self.db.applied_seq(self.system.driver_id)

    def recompute(self) -> None:
        """Rebuild the owned rows from the replica — the serial primitives.

        Distance rows are BFS on the replica's frozen H for the shard
        *and its G-neighbors* (the argmin inputs); tables are
        :func:`project_table_row` per owned source.  Bit-identical to
        :class:`RoutingService`'s rows by construction — same inputs,
        same code.
        """
        if self._computed_version == self._topo_version:
            return
        n = self.num_nodes
        g = Graph(n, self.g_edges)
        h = Graph(n, self.h_edges)
        own = self.system.owned_nodes(self.ident, n)
        sources = set(own)
        for u in own:
            sources.update(g.neighbors(u))
        self.dist = np.full((n, n), -1, dtype=np.int32)
        if sources:
            for s, row in batched_bfs(h.freeze(), sorted(sources), arrays=True):
                self.dist[s] = row
        self.tables = np.full((n, n), -1, dtype=np.int32)
        for u in own:
            project_table_row(self.dist, self.tables, sorted(g.neighbors(u)), u, None)
        self._computed_version = self._topo_version
        self.recomputes += 1

    # -- read side (serial table semantics, owner-scoped) --------------- #

    def distance(self, u: int, v: int) -> "int | None":
        d = int(self.dist[u, v])
        return d if d >= 0 else None

    def next_hop(self, u: int, v: int) -> "int | None":
        hop = int(self.tables[u, v])
        return hop if hop >= 0 else None

    # -- message handling ------------------------------------------------ #

    async def handle(self, messages, round_index: int) -> None:
        system = self.system
        for m in messages:
            if isinstance(m, (LsaUpdate, FullTopology)):
                if self.db.accept(m, now=round_index):
                    await self._relay(m)
                for ready in self.db.take_ready(system.driver_id):
                    self._apply_update(ready)
            elif isinstance(m, HelloBeacon):
                self.last_heard[m.origin] = round_index
                self.suspects.discard(m.origin)
                if m.origin == system.driver_id and m.seq > self.applied_seq():
                    await self._request_resend(m.seq)
            elif isinstance(m, RouteQuery):
                await self._handle_query(m)
        self.db.purge(round_index, system.lsa_max_age)
        if round_index % system.hello_every == 0:
            beacon = HelloBeacon(self.ident, seq=self.applied_seq(), stamp=round_index)
            for peer in system.ring_peers(self.ident):
                self.last_heard.setdefault(peer, round_index)
                await system.transport.send(self.ident, peer, beacon)
        for peer, heard in self.last_heard.items():
            if round_index - heard > HELLO_TIMEOUT:
                self.suspects.add(peer)

    async def _relay(self, m) -> None:
        relayed = m.relay(self.ident)
        if relayed is None:
            return
        for peer in self.system.ring_peers(self.ident):
            await self.system.transport.send(self.ident, peer, relayed)

    async def _request_resend(self, advertised_seq: int) -> None:
        pending = self.db._pending.get(self.system.driver_id, {})
        want = tuple(
            s
            for s in range(self.applied_seq() + 1, advertised_seq + 1)
            if s not in pending
        )
        if want:
            await self.system.transport.send(
                self.ident, self.system.driver_id, ResendRequest(self.ident, want)
            )

    # -- hop-by-hop route forwarding ------------------------------------- #

    async def _handle_query(self, q: RouteQuery) -> None:
        """One actor's leg of ``route_served``'s loop, verbatim.

        The ``pending_hop`` leg appends the hop's potential (this actor
        owns the hop's distance row); the forwarding leg makes the next
        table decision (this actor owns ``path[-1]``).  Both may run in
        one call when the hop's owner is also the next decision's owner.
        """
        system = self.system
        path = q.path
        potentials = q.potentials
        if q.pending_hop is not None:
            hop = q.pending_hop
            d_hop = self.distance(hop, q.target)
            potentials = (*potentials, d_hop + 1 if d_hop is not None else None)
            path = (*path, hop)
            if hop == q.target:
                await self._reply(q.qid, path, potentials, True, final_zero=True)
                return
            q = RouteQuery(q.qid, q.target, q.hops_left, path, potentials, None)
        current = q.path[-1]
        if q.hops_left <= 0:
            await self._reply(q.qid, q.path, q.potentials, False)
            return
        hop = self.next_hop(current, q.target)
        if hop is None:
            await self._reply(q.qid, q.path, (*q.potentials, None), False)
            return
        forwarded = RouteQuery(
            q.qid, q.target, q.hops_left - 1, q.path, q.potentials, pending_hop=hop
        )
        await system.transport.send(self.ident, system.owner(hop), forwarded)

    async def _reply(self, qid, path, potentials, delivered, final_zero=False) -> None:
        if final_zero:
            potentials = (*potentials, 0)
        reply = RouteReply(qid, path, potentials, delivered)
        await self.system.transport.send(
            self.ident, self.system.driver_id, reply
        )


class ActorSystem:
    """Driver + shard actors over one transport; synchronous facade.

    Construction mirrors :class:`~repro.dynamic.serving.RoutingService`
    (it owns one, as the feed source and serial truth).  ``mode`` picks
    the wire strategy: ``"incremental"`` floods net-delta
    :class:`LsaUpdate`\\ s, ``"full"`` floods a :class:`FullTopology`
    per tick (the naive baseline the benchmark compares against).
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        k: "int | None" = None,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
        shards: int = 4,
        transport: "Transport | None" = None,
        mode: str = "incremental",
        tables: bool = True,
        hello_every: int = 4,
        lsa_max_age: int = 12,
        max_rounds: int = 400,
    ) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be ≥ 1, got {shards}")
        if mode not in ("incremental", "full"):
            raise ParameterError(f"unknown wire mode {mode!r}")
        self.shards = shards
        self.driver_id = shards
        self.mode = mode
        self.tables = tables
        self.hello_every = hello_every
        self.lsa_max_age = lsa_max_age
        self.max_rounds = max_rounds
        self.transport = LoopbackTransport() if transport is None else transport
        self.service = RoutingService(
            g, method, k=k, epsilon=epsilon, r=r, rebuild_fraction=rebuild_fraction
        )
        self.service.subscribe(self._on_delta)
        self.actors = [ShardActor(i, self) for i in range(shards)]
        for actor in self.actors:
            self.transport.register(actor.ident)
        self.transport.register(self.driver_id)
        self._outbox: "list[ServeDelta]" = []
        self._log: "dict[int, LsaUpdate | FullTopology]" = {}
        self._out_seq = 0
        self._round = 0
        self._next_qid = 0
        self._replies: "dict[int, RouteReply]" = {}
        self._loop = asyncio.new_event_loop()
        self._started = False
        self._muzzled: "set[int]" = set()

    # -- topology of the tier ------------------------------------------- #

    def owner(self, node: int) -> int:
        return node % self.shards

    def owned_nodes(self, actor: int, n: int) -> "list[int]":
        return list(range(actor, n, self.shards))

    def ring_peers(self, actor: int) -> "tuple[int, ...]":
        if self.shards == 1:
            return ()
        if self.shards == 2:
            return ((actor + 1) % 2,)
        return ((actor - 1) % self.shards, (actor + 1) % self.shards)

    def actor_for(self, node: int) -> ShardActor:
        return self.actors[self.owner(node)]

    @property
    def stats(self):
        return self.transport.stats

    # -- lifecycle ------------------------------------------------------- #

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    def start(self) -> None:
        """Open the transport and bootstrap every replica (seq 1)."""
        if self._started:
            return
        self._run(self.transport.start())
        self._started = True
        g = self.service.graph
        h = self.service.advertised
        boot = FullTopology(
            origin=self.driver_id,
            seq=self._next_seq(),
            num_nodes=g.num_nodes,
            g_edges=tuple(sorted(g.edges())),
            h_edges=tuple(sorted(h.edges())),
        )
        self._log[boot.seq] = boot
        self._run(self._flood(boot))
        self.quiesce()

    def close(self) -> None:
        if self._started:
            self._run(self.transport.close())
            self._started = False
        self._loop.close()

    def __enter__(self) -> "ActorSystem":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- feed side ------------------------------------------------------- #

    def _next_seq(self) -> int:
        self._out_seq += 1
        return self._out_seq

    def _on_delta(self, delta: ServeDelta) -> None:
        self._outbox.append(delta)

    def _delta_message(self, delta: ServeDelta):
        seq = self._next_seq()
        if self.mode == "full":
            g = self.service.graph
            h = self.service.advertised
            return FullTopology(
                origin=self.driver_id,
                seq=seq,
                num_nodes=g.num_nodes,
                g_edges=tuple(sorted(g.edges())),
                h_edges=tuple(sorted(h.edges())),
            )
        return LsaUpdate(
            origin=self.driver_id,
            seq=seq,
            g_added=delta.g_added,
            g_removed=delta.g_removed,
            h_added=delta.h_added,
            h_removed=delta.h_removed,
            nodes_joined=delta.nodes_joined,
            num_nodes=delta.num_nodes,
            rebuilt=delta.rebuilt,
        )

    async def _flood(self, message) -> None:
        """Inject at the ring entry with a ring-covering TTL."""
        entry = message.seq % self.shards
        armed = message.ttl if message.ttl else max(1, self.shards)
        await self.transport.send(self.driver_id, entry, replace(message, ttl=armed))

    def apply(self, event) -> None:
        """Apply one event through the serial service; flood its delta."""
        self.service.apply(event)
        self.quiesce()

    def apply_tick(self, events) -> None:
        """Apply one coalesced tick; flood its delta and converge."""
        self.service.apply_batch(events)
        self.quiesce()

    # -- convergence ------------------------------------------------------ #

    def quiesce(self) -> int:
        """Flood queued deltas and pump rounds until the tier settles.

        Settled means: no frames pending in the transport, two
        consecutive idle rounds, and every (non-muzzled) actor's applied
        sequence equals the feed's.  Raises
        :class:`~repro.errors.ProtocolError` at ``max_rounds`` — with
        count-capped fault plans and the anti-entropy path, a healthy
        tier always converges well before it.  Ends by recomputing the
        owned rows on every actor (unless ``tables=False``).
        Returns the number of rounds pumped.
        """
        return self._run(self._quiesce())

    async def _quiesce(self) -> int:
        for delta in self._outbox:
            message = self._delta_message(delta)
            self._log[message.seq] = message
            await self._flood(message)
        self._outbox.clear()
        idle = 0
        rounds = 0
        while idle < 2:
            rounds += 1
            if rounds > self.max_rounds:
                raise ProtocolError(
                    f"actor tier failed to quiesce in {self.max_rounds} rounds "
                    f"(applied={[a.applied_seq() for a in self.actors]}, "
                    f"feed={self._out_seq}, pending={self.transport.pending()})"
                )
            progressed = await self._pump_round()
            lagging = any(
                a.applied_seq() < self._out_seq
                for a in self.actors
                if a.ident not in self._muzzled
            )
            if lagging and rounds % self.hello_every == 0:
                # Anti-entropy nudge: advertise the feed seq so lagging
                # actors discover the gap and request retransmission.
                beacon = HelloBeacon(self.driver_id, seq=self._out_seq, stamp=rounds)
                for actor in self.actors:
                    await self.transport.send(self.driver_id, actor.ident, beacon)
            if progressed or lagging or self.transport.pending():
                idle = 0
            else:
                idle += 1
        if self.tables:
            for actor in self.actors:
                if actor.ident not in self._muzzled:
                    actor.recompute()
        return rounds

    async def _pump_round(self) -> bool:
        self._round += 1
        progressed = False
        for actor in self.actors:
            messages = await self.transport.recv_all(actor.ident)
            if actor.ident in self._muzzled:
                continue  # a muzzled actor neither processes nor beacons
            if messages:
                progressed = True
            await actor.handle(messages, self._round)
        progressed |= await self._driver_drain()
        await self.transport.tick()
        return progressed

    async def _driver_drain(self) -> bool:
        progressed = False
        for m in await self.transport.recv_all(self.driver_id):
            if isinstance(m, ResendRequest):
                progressed = True
                for seq in m.want:
                    logged = self._log.get(seq)
                    if logged is not None:
                        # Unicast retransmit: ttl 0 — apply, don't re-flood.
                        await self.transport.send(self.driver_id, m.origin, logged)
            elif isinstance(m, RouteReply):
                self._replies[m.qid] = m
        return progressed

    # -- serving ---------------------------------------------------------- #

    def route(self, source: int, target: int, max_hops: "int | None" = None) -> RouteResult:
        """``route_served``'s journey, forwarded hop-by-hop across actors."""
        if source == target:
            raise ParameterError("source equals target")
        n = self.service.num_nodes
        if not (0 <= target < n):
            from ..errors import NodeNotFound

            raise NodeNotFound(target, n)
        if max_hops is None:
            max_hops = n
        return self._run(self._route(source, target, max_hops))

    async def _route(self, source: int, target: int, max_hops: int) -> RouteResult:
        self._next_qid += 1
        qid = self._next_qid
        query = RouteQuery(qid, target, max_hops, path=(source,))
        await self.transport.send(self.driver_id, self.owner(source), query)
        for _ in range(self.max_rounds):
            if qid in self._replies:
                break
            await self._pump_round()
        reply = self._replies.pop(qid, None)
        if reply is None:
            raise ProtocolError(f"route query {qid} starved after {self.max_rounds} rounds")
        return RouteResult(
            path=[int(x) for x in reply.path],
            delivered=reply.delivered,
            potentials=[float("inf") if p is None else p for p in reply.potentials],
        )

    def mismatches(self) -> "list[str]":
        """Differences between the actor tier and the serial service.

        Empty iff every actor's replica matches the live (G, H) and
        every owned distance/table row is bit-identical to the service's
        matrices — the convergence property the suite asserts.
        """
        out = []
        g_edges = set(self.service.graph.edges())
        h_edges = set(self.service.advertised.edges())
        n = self.service.num_nodes
        dist = self.service._dist
        tabs = self.service._tables
        for actor in self.actors:
            if actor.ident in self._muzzled:
                continue
            tag = f"actor {actor.ident}"
            if actor.num_nodes != n:
                out.append(f"{tag}: num_nodes {actor.num_nodes} != {n}")
                continue
            if actor.g_edges != g_edges:
                out.append(f"{tag}: G replica diverged")
            if actor.h_edges != h_edges:
                out.append(f"{tag}: H replica diverged")
            if not self.tables:
                continue
            for u in self.owned_nodes(actor.ident, n):
                if not np.array_equal(actor.dist[u], dist[u]):
                    out.append(f"{tag}: distance row {u} differs")
                if not np.array_equal(actor.tables[u], tabs[u]):
                    out.append(f"{tag}: table row {u} differs")
        return out

    def converged(self) -> bool:
        return not self.mismatches()

    # -- chaos hooks ------------------------------------------------------- #

    def muzzle(self, actor_id: int) -> None:
        """Silence an actor (drops its inbox, stops its beacons) — the
        hook the neighbor-timeout and fault tests use."""
        self._muzzled.add(actor_id)

    def unmuzzle(self, actor_id: int) -> None:
        self._muzzled.discard(actor_id)
