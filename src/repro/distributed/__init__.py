"""Distributed substrate: synchronous message passing (the LOCAL model).

Realizes Algorithm 3 as an actual protocol — nodes exchange HELLOs, flood
neighbor lists with TTL r−1+β, compute their dominating trees from the
received partial topology, and flood the trees back — so the paper's
round-complexity and locality claims are *measured*, not assumed.
"""

from .messages import Hello, NeighborAdvert, TreeAdvert, size_in_links
from .metrics import SimStats
from .node import ProtocolNode
from .simulator import SyncNetwork
from .protocols import (
    DistributedResult,
    FloodState,
    HelloNode,
    PeriodicLinkState,
    RemSpanNode,
    ScopedFloodNode,
    StabilizationReport,
    run_hello,
    run_remspan,
    run_scoped_flood,
    tree_algorithm,
)

__all__ = [
    "Hello",
    "NeighborAdvert",
    "TreeAdvert",
    "size_in_links",
    "SimStats",
    "ProtocolNode",
    "SyncNetwork",
    "DistributedResult",
    "FloodState",
    "HelloNode",
    "PeriodicLinkState",
    "RemSpanNode",
    "ScopedFloodNode",
    "StabilizationReport",
    "run_hello",
    "run_remspan",
    "run_scoped_flood",
    "tree_algorithm",
]
