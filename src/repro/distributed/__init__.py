"""Distributed substrate: lock-step simulation *and* the serving actor tier.

Two tiers share one message vocabulary and one accounting ruler
(:mod:`~repro.distributed.codec`):

* the synchronous simulator (the LOCAL model) realizes Algorithm 3 as an
  actual protocol — nodes exchange HELLOs, flood neighbor lists with TTL
  r−1+β, compute their dominating trees from the received partial
  topology, and flood the trees back — so the paper's round-complexity
  and locality claims are *measured*, not assumed;
* the asyncio actor tier (:mod:`~repro.distributed.actors`) serves the
  *maintained tables* for real: shard actors replicate (G, H) from
  sequence-numbered incremental LSA floods
  (:mod:`~repro.distributed.wire`) over a pluggable
  :class:`~repro.distributed.transport.Transport` — deterministic
  in-process loopback, TCP or Unix-domain sockets — and forward
  ``route_served`` journeys hop-by-hop.
"""

from .actors import ActorSystem, ShardActor
from .codec import WIRE_SCHEMA, decode, encode, kind_of, link_units, wire_bytes
from .messages import Hello, NeighborAdvert, TreeAdvert, size_in_links
from .metrics import SimStats, WireStats
from .node import ProtocolNode
from .simulator import SyncNetwork
from .transport import (
    LoopbackTransport,
    TcpTransport,
    Transport,
    UdsTransport,
    make_transport,
)
from .wire import (
    HELLO_TIMEOUT,
    LOOP_WINDOW,
    FullTopology,
    HelloBeacon,
    LsaDb,
    LsaUpdate,
    ResendRequest,
    RouteQuery,
    RouteReply,
)
from .protocols import (
    DistributedResult,
    FloodState,
    HelloNode,
    PeriodicLinkState,
    RemSpanNode,
    ScopedFloodNode,
    StabilizationReport,
    run_hello,
    run_remspan,
    run_scoped_flood,
    tree_algorithm,
)

__all__ = [
    "Hello",
    "NeighborAdvert",
    "TreeAdvert",
    "size_in_links",
    "SimStats",
    "WireStats",
    "ProtocolNode",
    "SyncNetwork",
    "DistributedResult",
    "FloodState",
    "HelloNode",
    "PeriodicLinkState",
    "RemSpanNode",
    "ScopedFloodNode",
    "StabilizationReport",
    "run_hello",
    "run_remspan",
    "run_scoped_flood",
    "tree_algorithm",
    # actor tier
    "ActorSystem",
    "ShardActor",
    "Transport",
    "LoopbackTransport",
    "TcpTransport",
    "UdsTransport",
    "make_transport",
    "WIRE_SCHEMA",
    "encode",
    "decode",
    "kind_of",
    "link_units",
    "wire_bytes",
    "HELLO_TIMEOUT",
    "LOOP_WINDOW",
    "HelloBeacon",
    "LsaUpdate",
    "FullTopology",
    "ResendRequest",
    "RouteQuery",
    "RouteReply",
    "LsaDb",
]
