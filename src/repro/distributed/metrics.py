"""Accounting for distributed runs: rounds, messages, advertised links.

The paper evaluates distributed algorithms by *rounds* (Table 1's
"computation time" column) and motivates remote-spanners by *advertisement
volume* (flooding fewer links than OSPF).  The simulator fills one of these
records per run so the benches can print both.

Since PR 7 the record is backed by a :class:`repro.obs.MetricsRegistry`
instead of plain dataclass fields: the familiar attributes
(``stats.rounds`` etc.) are live counter reads, ``record_round`` also
feeds a per-round message-count histogram, and :meth:`SimStats.snapshot`
emits the same schema serving soaks write — one format for simulator runs
and serving metrics.  The registry is dedicated and ungated (simulation
accounting is the experiment's *output*, not optional instrumentation),
so the ``REPRO_OBS`` knob never changes a simulator result.
"""

from __future__ import annotations

from ..obs.metrics import COUNT_BOUNDS, MetricsRegistry

__all__ = ["SimStats", "WireStats"]


class SimStats:
    """Cost profile of one simulated protocol execution."""

    __slots__ = ("registry", "per_round_messages")

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = MetricsRegistry() if registry is None else registry
        self.per_round_messages: list[int] = []

    @property
    def rounds(self) -> int:
        return int(self.registry.counter("sim.rounds"))

    @property
    def messages(self) -> int:
        """Node-to-neighbor deliveries."""
        return int(self.registry.counter("sim.messages"))

    @property
    def broadcasts(self) -> int:
        """Local broadcast operations (radio transmissions)."""
        return int(self.registry.counter("sim.broadcasts"))

    @property
    def links_advertised(self) -> int:
        """Sum of message sizes in link units."""
        return int(self.registry.counter("sim.links_advertised"))

    def record_round(self, messages: int, broadcasts: int, links: int) -> None:
        reg = self.registry
        reg.inc("sim.rounds")
        reg.inc("sim.messages", messages)
        reg.inc("sim.broadcasts", broadcasts)
        reg.inc("sim.links_advertised", links)
        reg.observe("sim.round_messages", messages, COUNT_BOUNDS)
        self.per_round_messages.append(messages)

    def snapshot(self) -> dict:
        """The run's counters in the ``repro.obs`` snapshot schema."""
        return self.registry.snapshot()

    def __repr__(self) -> str:
        return (
            f"SimStats(rounds={self.rounds}, messages={self.messages}, "
            f"broadcasts={self.broadcasts}, links_advertised={self.links_advertised})"
        )


class WireStats:
    """Cost profile of one distributed-transport run (the actor tier).

    The wire twin of :class:`SimStats`: same registry backing, same
    snapshot schema, but counting *frames and bytes* as the codec
    encodes them rather than lock-step deliveries.  ``links`` is the
    paper's advertised-link unit resolved through
    :func:`repro.distributed.codec.link_units` — the one ruler both
    tiers share — so ``BENCH_wire.json`` can put simulator floods and
    actor LSA streams on the same axis.  ``dropped``/``delayed`` count
    fault-plane interventions (:func:`repro.faults.on_wire_send`).
    """

    __slots__ = ("registry",)

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = MetricsRegistry() if registry is None else registry

    @property
    def rounds(self) -> int:
        return int(self.registry.counter("wire.rounds"))

    @property
    def messages(self) -> int:
        """Frames handed to a transport (post fault-plane verdict)."""
        return int(self.registry.counter("wire.messages"))

    @property
    def bytes(self) -> int:
        """Encoded frame bytes, excluding transport framing overhead."""
        return int(self.registry.counter("wire.bytes"))

    @property
    def links(self) -> int:
        return int(self.registry.counter("wire.links"))

    @property
    def dropped(self) -> int:
        return int(self.registry.counter("wire.dropped"))

    @property
    def delayed(self) -> int:
        return int(self.registry.counter("wire.delayed"))

    def record_round(self) -> None:
        self.registry.inc("wire.rounds")

    def record_send(self, size_bytes: int, link_units: int) -> None:
        reg = self.registry
        reg.inc("wire.messages")
        reg.inc("wire.bytes", size_bytes)
        reg.inc("wire.links", link_units)
        reg.observe("wire.frame_bytes", size_bytes, COUNT_BOUNDS)

    def record_dropped(self) -> None:
        self.registry.inc("wire.dropped")

    def record_delayed(self) -> None:
        self.registry.inc("wire.delayed")

    def snapshot(self) -> dict:
        """The run's counters in the ``repro.obs`` snapshot schema."""
        return self.registry.snapshot()

    def __repr__(self) -> str:
        return (
            f"WireStats(rounds={self.rounds}, messages={self.messages}, "
            f"bytes={self.bytes}, links={self.links}, "
            f"dropped={self.dropped}, delayed={self.delayed})"
        )
