"""Accounting for distributed runs: rounds, messages, advertised links.

The paper evaluates distributed algorithms by *rounds* (Table 1's
"computation time" column) and motivates remote-spanners by *advertisement
volume* (flooding fewer links than OSPF).  The simulator fills one of these
records per run so the benches can print both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Cost profile of one simulated protocol execution."""

    rounds: int = 0
    messages: int = 0  # node-to-neighbor deliveries
    broadcasts: int = 0  # local broadcast operations (radio transmissions)
    links_advertised: int = 0  # sum of message sizes in link units
    per_round_messages: list = field(default_factory=list)

    def record_round(self, messages: int, broadcasts: int, links: int) -> None:
        self.rounds += 1
        self.messages += messages
        self.broadcasts += broadcasts
        self.links_advertised += links
        self.per_round_messages.append(messages)
