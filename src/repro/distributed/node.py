"""Protocol-node base class for the synchronous simulator.

A node is a state machine driven once per round with the batch of messages
delivered to it.  It reacts by queueing broadcasts (delivered to all graph
neighbors at the *next* round — the LOCAL model's unit-time local
broadcast, matching the radio-network semantics of OLSR-style protocols)
and may declare itself *halted*; the simulation ends when every node has
halted and no messages are in flight.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ProtocolNode"]


class ProtocolNode:
    """Base class; subclasses override :meth:`on_round`.

    Attributes
    ----------
    ident:
        The node's id (equal to its graph node id).
    halted:
        Set ``True`` by the subclass when its protocol work is done.
        Halted nodes still receive and may react to messages (real routers
        never stop listening) — halting only signals quiescence.
    """

    def __init__(self, ident: int) -> None:
        self.ident = ident
        self.halted = False
        self._outbox: list = []

    # ------------------------------------------------------------------ #
    # API towards the simulator
    # ------------------------------------------------------------------ #

    def broadcast(self, message) -> None:
        """Queue *message* for local broadcast to all neighbors next round."""
        self._outbox.append(message)

    def broadcast_all(self, messages: Iterable) -> None:
        for m in messages:
            self.broadcast(m)

    def drain_outbox(self) -> list:
        out, self._outbox = self._outbox, []
        return out

    # ------------------------------------------------------------------ #
    # protocol hook
    # ------------------------------------------------------------------ #

    def on_round(self, round_index: int, inbox: Sequence) -> None:
        """Handle the messages delivered this round (override me).

        ``round_index`` starts at 1 for the first round.  ``inbox`` holds
        every message broadcast by a neighbor in the previous round (round
        1 delivers nothing; it is where protocols originate traffic).
        """
        raise NotImplementedError
