"""Experiment harnesses: one module per table/figure/claim of the paper.

``table1`` regenerates Table 1; ``figure1`` the worked example; ``scaling``
the n/k/ε/r sweeps behind Theorems 1–3 and Propositions 3/7; ``ablation``
the design-choice comparisons.  ``runner`` holds the shared instance
builders and seed discipline.
"""

from .runner import largest_component, poisson_udg, scaled_udg, side_for_degree
from .table1 import TABLE1_HEADERS, Table1Row, build_table1
from .figure1 import Figure1, ascii_scene, build_figure1, figure1_points, minimal_remote_spanner
from .scaling import (
    ScalingResult,
    ScalingRow,
    eps_sweep,
    k_sweep,
    linear_ubg,
    tree_size_sweep,
    udg_edge_scaling,
)
from .ablation import (
    AblationReport,
    ablate_beta,
    ablate_first_fit,
    ablate_greedy_vs_mis,
    ablate_mis_order,
)

__all__ = [
    "largest_component",
    "poisson_udg",
    "scaled_udg",
    "side_for_degree",
    "TABLE1_HEADERS",
    "Table1Row",
    "build_table1",
    "Figure1",
    "ascii_scene",
    "build_figure1",
    "figure1_points",
    "minimal_remote_spanner",
    "ScalingResult",
    "ScalingRow",
    "eps_sweep",
    "k_sweep",
    "linear_ubg",
    "tree_size_sweep",
    "udg_edge_scaling",
    "AblationReport",
    "ablate_beta",
    "ablate_first_fit",
    "ablate_greedy_vs_mis",
    "ablate_mis_order",
]
