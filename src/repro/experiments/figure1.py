"""Figure 1 — the worked unit-disk-graph example, regenerated.

The paper's only figure shows, on one small unit disk graph:

(a) the input UDG ``G``;
(b) a (1, 0)-remote-spanner ``H^b`` with a pair (u, x) where
    ``d_{H^b_u}(u, x) = d_G(u, x)`` although the connecting edges are not
    all in H (the augmentation does the work);
(c) a (2, −1)-remote-spanner ``H^c`` with a pair (u, v) realizing the
    extremal stretch ``d_{H^c_u}(u, v) = 2·d_G(u, v) − 1``;
(d) a 2-connecting (2, −1)-remote-spanner ``H^d`` whose augmented view
    contains two internally disjoint u→v paths of bounded total length.

This module rebuilds the scene.  Panels (b) and (d) come from the paper's
own constructions (Algorithm 4 / Algorithm 5); panel (c) mirrors the
paper's *hand-picked* sparse example by greedily deleting edges while the
independent checker still certifies the (2, −1) remote stretch — yielding
an inclusion-minimal (2, −1)-remote-spanner that actually exhibits
non-trivial stretch.  The witness pairs are *searched for* and returned
with their certified values, and an ASCII rendering of the point layout is
provided for the example script.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core import (
    build_biconnecting_spanner,
    build_k_connecting_spanner,
)
from ..core.remote_spanner import RemoteSpanner
from ..graph import AugmentedView, Graph, bfs_distances
from ..geometry import unit_disk_graph
from ..paths import disjoint_paths, k_connecting_distance, k_connecting_profile

__all__ = [
    "Figure1",
    "build_figure1",
    "figure1_points",
    "ascii_scene",
    "minimal_remote_spanner",
]


def figure1_points() -> np.ndarray:
    """A deterministic point layout reproducing the figure's structure.

    Two "lens" chains from u to v (upper y–x, lower y'–x') plus a tail
    node z behind v — enough structure to exhibit all three panel
    phenomena: a 2-hop exact pair, a stretch-(2d−1) pair, and a pair of
    internally disjoint u→v paths.
    """
    return np.array(
        [
            [0.00, 0.00],  # 0: u
            [0.90, 0.35],  # 1: y   (upper relay, adjacent to u)
            [0.90, -0.35],  # 2: y'  (lower relay, adjacent to u)
            [1.75, 0.40],  # 3: x   (upper second hop)
            [1.75, -0.40],  # 4: x'  (lower second hop)
            [2.60, 0.00],  # 5: v   (target, two hops past the relays)
            [3.55, 0.00],  # 6: z   (tail node behind v)
        ]
    )


NAMES = ["u", "y", "y'", "x", "x'", "v", "z"]


@dataclass
class Figure1:
    """The four panels plus their certified witness facts."""

    graph: Graph  # panel (a)
    spanner_b: RemoteSpanner  # panel (b): (1, 0)-remote-spanner
    graph_c: Graph  # panel (c): inclusion-minimal (2, −1)-remote-spanner
    spanner_d: RemoteSpanner  # panel (d): 2-connecting (2, −1)

    # Witnesses (node pairs and the measured distances).
    exact_pair: "tuple[int, int, int]"  # (u, x, d) with d_{Hb_u} == d_G == d
    stretch_pair: "tuple[int, int, int, int]"  # (u, v, d_G, d_{Hc_u})
    disjoint_witness: "tuple[int, int, list]"  # (u, v, two disjoint paths in Hd_u)


def minimal_remote_spanner(g: Graph, alpha: float, beta: float) -> Graph:
    """Greedy edge thinning under the exact (α, β) remote-stretch checker.

    Deletes edges in canonical order whenever the remainder still passes
    :func:`~repro.core.stretch.is_remote_spanner` — the result is
    inclusion-minimal (no single edge can be dropped), like the paper's
    hand-drawn sparse panels.  Exponential-free but O(m²·n) BFS work:
    strictly a small-instance exhibit tool.
    """
    from ..core.stretch import is_remote_spanner

    h = g.copy()
    for u, v in sorted(g.edges()):
        h.remove_edge(u, v)
        if not is_remote_spanner(h, g, alpha, beta):
            h.add_edge(u, v)
    return h


def build_figure1(points: "np.ndarray | None" = None) -> Figure1:
    """Construct all four panels and locate the witness pairs."""
    pts = points if points is not None else figure1_points()
    g = unit_disk_graph(pts, radius=1.0)

    spanner_b = build_k_connecting_spanner(g, k=1)
    graph_c = minimal_remote_spanner(g, 2.0, -1.0)
    spanner_d = build_biconnecting_spanner(g)

    exact_pair = _find_exact_pair(spanner_b.graph, g)
    stretch_pair = _find_worst_stretch_pair(graph_c, g)
    disjoint_witness = _find_disjoint_witness(spanner_d.graph, g)
    return Figure1(
        graph=g,
        spanner_b=spanner_b,
        graph_c=graph_c,
        spanner_d=spanner_d,
        exact_pair=exact_pair,
        stretch_pair=stretch_pair,
        disjoint_witness=disjoint_witness,
    )


def _find_exact_pair(h: Graph, g: Graph) -> "tuple[int, int, int]":
    """A nonadjacent pair with d_{H_u} = d_G where H misses a u-incident edge."""
    best: "tuple[int, int, int] | None" = None
    g.freeze()
    h.freeze()
    for u in g.nodes():
        dg = bfs_distances(g, u)
        dh = AugmentedView(h, g, u).distances_from(u)
        for v in g.nodes():
            if dg[v] >= 2 and dh[v] == dg[v]:
                missing = any(not h.has_edge(u, w) for w in g.neighbors(u))
                if missing and (best is None or dg[v] > best[2]):
                    best = (u, v, dg[v])
    assert best is not None, "exact-distance witness must exist for a (1,0)-RS"
    return best


def _find_worst_stretch_pair(h: Graph, g: Graph) -> "tuple[int, int, int, int]":
    """The pair maximizing d_{H_u}(u,v) − d_G(u,v) in the (2,−1) panel."""
    worst = (0, 0, 1, 1)
    worst_gap = -1
    g.freeze()
    h.freeze()
    for u in g.nodes():
        dg = bfs_distances(g, u)
        dh = AugmentedView(h, g, u).distances_from(u)
        for v in g.nodes():
            if dg[v] >= 2 and dh[v] >= 0:
                gap = dh[v] - dg[v]
                if gap > worst_gap:
                    worst_gap = gap
                    worst = (u, v, dg[v], dh[v])
    return worst


def _find_disjoint_witness(h: Graph, g: Graph) -> "tuple[int, int, list]":
    """A nonadjacent 2-connected pair with its two disjoint paths in H_u."""
    from ..graph import augmented_graph

    best: "tuple[int, int, list] | None" = None
    best_len = math.inf
    for u in g.nodes():
        for v in g.nodes():
            if v <= u or g.has_edge(u, v):
                continue
            if k_connecting_distance(g, u, v, 2) == math.inf:
                continue
            hu = augmented_graph(h, g, u)
            profile = k_connecting_profile(hu, u, v, 2)
            if profile[1] == math.inf:
                continue
            if profile[1] < best_len:
                best_len = profile[1]
                best = (u, v, disjoint_paths(hu, u, v, 2))
    assert best is not None, "2-connected witness must exist in this layout"
    return best


def ascii_scene(points: np.ndarray, g: Graph, h: "Graph | None" = None, width: int = 64) -> str:
    """Plot the point layout with node names; mark spanner/non-spanner edges.

    Edges in *h* print as ``=``-style entries in the legend; edges only in
    *g* as ``-``.  (The canvas itself only places named nodes — edge
    routing in ASCII would be noise at this scale.)
    """
    xs, ys = points[:, 0], points[:, 1]
    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    h_rows = 11
    canvas = [[" "] * width for _ in range(h_rows)]

    def place(i: int) -> None:
        cx = int((xs[i] - x0) / (x1 - x0 + 1e-9) * (width - 4))
        cy = int((ys[i] - y0) / (y1 - y0 + 1e-9) * (h_rows - 1))
        name = NAMES[i] if i < len(NAMES) else str(i)
        for j, ch in enumerate("*" + name):
            if cx + j < width:
                canvas[h_rows - 1 - cy][cx + j] = ch

    for i in range(points.shape[0]):
        place(i)
    lines = ["".join(row).rstrip() for row in canvas]
    legend = []
    for a, b in sorted(g.edges()):
        na = NAMES[a] if a < len(NAMES) else str(a)
        nb = NAMES[b] if b < len(NAMES) else str(b)
        mark = "=" if (h is not None and h.has_edge(a, b)) else "-"
        legend.append(f"{na}{mark}{nb}")
    lines.append("edges: " + "  ".join(legend))
    if h is not None:
        lines.append("('=' kept in spanner, '-' dropped but known to endpoints)")
    return "\n".join(ln for ln in lines if ln)
