"""Shared experiment plumbing: instance builders and seed discipline.

Every experiment derives its randomness from a single integer seed via
:func:`repro.rng.derive_seed`, so benchmark tables are reproducible and
individual rows can be re-run in isolation.

Instance builders produce the paper's input models:

* :func:`poisson_udg` — Theorem 2's "unit disk graph of a uniform Poisson
  distribution in a fixed square", parameterized by intensity and side;
* :func:`scaled_udg` — a UDG with *exactly* n points whose square side is
  chosen to keep expected degree constant (the regime where the n-sweep
  exponents are meaningful — fixed side would drive the graph to a clique);
* :func:`largest_component` — experiments about stretch/routing need a
  connected arena; theorems hold per-component anyway.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError
from ..geometry import poisson_points, uniform_points, unit_disk_graph
from ..graph import Graph, connected_components, induced_subgraph
from ..rng import derive_seed

__all__ = [
    "poisson_udg",
    "scaled_udg",
    "largest_component",
    "side_for_degree",
]


def side_for_degree(n: int, target_degree: float) -> float:
    """Square side so n uniform points have expected UDG degree ≈ target.

    With density λ = n/side², a node expects ``λ·π·1²`` neighbors (ignoring
    boundary effects); solve for side.
    """
    if n < 1 or target_degree <= 0:
        raise ParameterError(f"need n ≥ 1 and positive degree (got {n}, {target_degree})")
    return math.sqrt(n * math.pi / target_degree)


def poisson_udg(
    intensity: float, side: float, seed: int, tag: str = "poisson"
) -> "tuple[Graph, np.ndarray]":
    """Theorem 2's model: Poisson(intensity) points on [0, side]², radius 1."""
    pts = poisson_points(intensity, side, dim=2, seed=derive_seed(seed, tag))
    return unit_disk_graph(pts, radius=1.0), pts


def scaled_udg(
    n: int, target_degree: float, seed: int, tag: str = "udg"
) -> "tuple[Graph, np.ndarray]":
    """Exactly n uniform points, side scaled for constant expected degree."""
    side = side_for_degree(n, target_degree)
    pts = uniform_points(n, side, dim=2, seed=derive_seed(seed, tag, n))
    return unit_disk_graph(pts, radius=1.0), pts


def largest_component(g: Graph) -> "tuple[Graph, list[int]]":
    """Induced sub-graph on the largest connected component (re-indexed).

    Returns ``(subgraph, original_ids)``.
    """
    comps = connected_components(g)
    if not comps:
        return Graph(0), []
    biggest = max(comps, key=len)
    return induced_subgraph(g, biggest)
