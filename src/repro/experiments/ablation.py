"""Ablations of the paper's design choices.

Four knobs DESIGN.md calls out, each isolated against a controlled
alternative:

1. **Cover heuristic (Alg. 1) vs MIS (Alg. 2)** at equal (r, 1): greedy
   buys smaller trees per node at a log Δ guarantee cost; MIS buys the
   doubling-metric size bound.  Measured: union edge counts + mean tree
   size on the same instances.
2. **β = 0 vs β = 1** for the greedy tree at fixed r: β = 1 admits
   same-ring dominators (a wider candidate pool) but pays one extra hop of
   path per pick; empirically the trees come out *larger* — β = 1 is used
   by Proposition 1 because it is what the (1+ε, 1−2ε) characterization
   needs, not because it saves edges.
3. **Max-gain greedy vs first-fit cover**: replace Algorithm 4's
   "pick x maximizing |N(x) ∩ S|" with "pick the first usable x" and watch
   the edge count inflate — the greedy choice is what earns the
   (1 + log Δ) factor.
4. **Nearest-first vs farthest-first MIS order** (Algorithm 2's ordering
   requirement): farthest-first still covers the ball but breaks the
   depth bookkeeping (a dominator may sit *deeper* than r' − 1 + 1),
   producing (r, 1)-domination violations.  Measured: violation counts —
   empirically demonstrating why the pseudo-code orders picks.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from ..core import build_from_trees, dom_tree_greedy, dom_tree_mis
from ..core.domtree import DomTree, dominating_tree_violations
from ..core.remote_spanner import StretchGuarantee
from ..graph import Graph
from ..graph.traversal import bfs_layers, bfs_parents, path_to_root
from ..rng import derive_seed
from .runner import largest_component, scaled_udg

__all__ = [
    "AblationReport",
    "ablate_greedy_vs_mis",
    "ablate_beta",
    "ablate_first_fit",
    "ablate_mis_order",
    "first_fit_star",
    "dom_tree_mis_farthest_first",
]


@dataclass
class AblationReport:
    """A named comparison: variant -> measured dict."""

    name: str
    variants: dict


def _instance(seed: int, n: int = 220, degree: float = 12.0) -> Graph:
    g_full, _pts = scaled_udg(n, degree, derive_seed(seed, "abl"))
    g, _ids = largest_component(g_full)
    return g


def ablate_greedy_vs_mis(r: int = 3, seed: int = 11, n: int = 220) -> AblationReport:
    """Knob 1: Algorithm 1 vs Algorithm 2 at identical (r, 1)."""
    g = _instance(seed, n)
    guar = StretchGuarantee(1.0 + 1.0 / (r - 1), 1.0 - 2.0 / (r - 1), 1)
    rs_greedy = build_from_trees(
        g, lambda gg, u: dom_tree_greedy(gg, u, r, 1), guar, "greedy"
    )
    rs_mis = build_from_trees(g, lambda gg, u: dom_tree_mis(gg, u, r), guar, "mis")
    return AblationReport(
        name=f"greedy vs MIS (r={r}, beta=1)",
        variants={
            "greedy": {
                "union_edges": rs_greedy.num_edges,
                "mean_tree_edges": mean(t.num_edges for t in rs_greedy.trees.values()),
            },
            "mis": {
                "union_edges": rs_mis.num_edges,
                "mean_tree_edges": mean(t.num_edges for t in rs_mis.trees.values()),
            },
        },
    )


def ablate_beta(r: int = 3, seed: int = 12, n: int = 220) -> AblationReport:
    """Knob 2: β = 0 vs β = 1 for the greedy tree at fixed r."""
    g = _instance(seed, n)
    out: dict = {}
    for beta in (0, 1):
        sizes = [dom_tree_greedy(g, u, r, beta).num_edges for u in g.nodes()]
        out[f"beta={beta}"] = {
            "mean_tree_edges": mean(sizes),
            "max_tree_edges": max(sizes),
        }
    return AblationReport(name=f"beta ablation (r={r})", variants=out)


def first_fit_star(g: Graph, u: int, k: int = 1) -> DomTree:
    """Algorithm 4 with the greedy choice replaced by first-fit.

    Picks the smallest-id usable neighbor instead of the max-coverage one.
    Still correct (the loop invariant only needs progress) — just bigger.
    """
    layers = bfs_layers(g, u, cutoff=2)
    two_ring = set(layers[2]) if len(layers) > 2 else set()
    nu = g.neighbors(u)
    tree = DomTree(root=u)
    m: set[int] = set()
    s_set = set(two_ring)
    while s_set:
        x = next(x for x in sorted(nu - m) if g.neighbors(x) & s_set)
        m.add(x)
        tree.add_root_path([u, x])
        s_set = {
            v
            for v in s_set
            if not (g.neighbors(v) & nu <= m or len(g.neighbors(v) & m) >= k)
        }
    return tree


def ablate_first_fit(seed: int = 13, n: int = 220) -> AblationReport:
    """Knob 3: max-gain greedy vs first-fit MPR selection."""
    from ..core.domtree_kcover import dom_tree_kcover

    g = _instance(seed, n)
    greedy_sizes = [dom_tree_kcover(g, u, 1).num_edges for u in g.nodes()]
    ff_sizes = [first_fit_star(g, u, 1).num_edges for u in g.nodes()]
    union_greedy = build_from_trees(
        g, lambda gg, u: dom_tree_kcover(gg, u, 1), StretchGuarantee(1, 0, 1), "g"
    ).num_edges
    union_ff = build_from_trees(
        g, lambda gg, u: first_fit_star(gg, u, 1), StretchGuarantee(1, 0, 1), "ff"
    ).num_edges
    return AblationReport(
        name="max-gain vs first-fit MPR",
        variants={
            "max_gain": {"mean_star": mean(greedy_sizes), "union_edges": union_greedy},
            "first_fit": {"mean_star": mean(ff_sizes), "union_edges": union_ff},
        },
    )


def dom_tree_mis_farthest_first(g: Graph, u: int, r: int) -> DomTree:
    """Algorithm 2 with the pick order REVERSED (farthest-first).

    Deliberately wrong variant for the ordering ablation: dominators may
    end up deeper than the dominated node's radius allows, breaking the
    (r, 1) property — which :func:`ablate_mis_order` counts.
    """
    _dist, parent = bfs_parents(g, u, cutoff=r)
    layers = bfs_layers(g, u, cutoff=r)
    tree = DomTree(root=u)
    remaining: set[int] = set()
    top = min(r, len(layers) - 1)
    for r_prime in range(2, top + 1):
        remaining.update(layers[r_prime])
    for r_prime in range(top, 1, -1):  # farthest ring first
        for x in sorted(layers[r_prime]):
            if x not in remaining:
                continue
            tree.add_root_path(list(reversed(path_to_root(parent, x))))
            remaining -= g.neighbors(x)
            remaining.discard(x)
    return tree


def ablate_mis_order(r: int = 4, seed: int = 14, n: int = 220) -> AblationReport:
    """Knob 4: nearest-first (correct) vs farthest-first MIS ordering."""
    g = _instance(seed, n)
    near_viol = 0
    far_viol = 0
    near_sizes, far_sizes = [], []
    for u in g.nodes():
        t_near = dom_tree_mis(g, u, r)
        t_far = dom_tree_mis_farthest_first(g, u, r)
        near_viol += len(dominating_tree_violations(g, t_near, r, 1))
        far_viol += len(dominating_tree_violations(g, t_far, r, 1))
        near_sizes.append(t_near.num_edges)
        far_sizes.append(t_far.num_edges)
    return AblationReport(
        name=f"MIS pick order (r={r})",
        variants={
            "nearest_first": {
                "violations": near_viol,
                "mean_tree_edges": mean(near_sizes),
            },
            "farthest_first": {
                "violations": far_viol,
                "mean_tree_edges": mean(far_sizes),
            },
        },
    )
