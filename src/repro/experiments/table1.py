"""Table 1 — remote-spanners versus regular spanners, regenerated.

The paper's Table 1 compares nine (input model, spanner type) combinations
by edge count and computation time.  This harness re-creates each row on
concrete instances:

====  =======================  =================================================
row   paper entry              what we run
====  =======================  =================================================
1     (k, k−1)-spanner [2]     greedy (2k−1)-spanner + Baswana–Sen (stretch
                               certified, edges measured)
2     (k, 0)-remote-spanner    the additive (1, 2)-spanner — a (2, 1)-spanner,
      via [2]                  hence a (2, 0)-remote-spanner (§1.2's
                               translation); remote stretch verified directly
3     (1, 0)-spanner           full topology (m edges, the trivial bound)
4     k-conn. (1,0)-rem.-span. Algorithm 4 union (Th. 2); edges vs the exact
                               lower bound; O(1) rounds measured distributedly
5     rand. UDG (1,0)-rem.     same construction on a Poisson UDG (edge count
                               vs the n^{4/3} log n shape; see scaling bench)
6     UBG known-dist spanner   EXTERNAL ([9]; needs metric distances as input
                               — out of the paper's own setting; row reported
                               as citation only, per DESIGN.md substitutions)
7     (1+ε, 1−2ε)-rem.-span.   Theorem 1 construction on a UDG; edges/n and
                               O(ε^{-1}) rounds measured
8     k-fault-tol. geometric   EXTERNAL ([8]; sequential, needs ℝ^d input —
                               citation row)
9     2-conn. (2,−1)-rem.      Theorem 3 construction; edges/n, O(1) rounds
====  =======================  =================================================

Every measured row re-verifies its stretch promise with the independent
checkers before reporting, so the table can't silently drift from the
definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import additive_two_spanner, baswana_sen_spanner, greedy_spanner
from ..core import (
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    build_remote_spanner,
    is_k_connecting_remote_spanner,
    is_remote_spanner,
    k_connecting_spanner_lower_bound,
)
from ..distributed import run_remspan
from ..graph import sample_pairs
from ..graph.generators import random_connected_gnp
from ..rng import derive_seed
from .runner import largest_component, scaled_udg

__all__ = ["Table1Row", "build_table1", "TABLE1_HEADERS"]

TABLE1_HEADERS = [
    "row",
    "input",
    "spanner",
    "edges",
    "edges/n",
    "rounds",
    "stretch ok",
    "note",
]


@dataclass
class Table1Row:
    row: int
    input_model: str
    spanner_type: str
    edges: "int | str"
    edges_per_n: "float | str"
    rounds: "int | str"
    stretch_ok: "bool | str"
    note: str = ""

    def as_list(self) -> list:
        return [
            self.row,
            self.input_model,
            self.spanner_type,
            self.edges,
            self.edges_per_n,
            self.rounds,
            self.stretch_ok,
            self.note,
        ]


def build_table1(
    n_any: int = 60,
    n_udg: int = 250,
    k: int = 2,
    epsilon: float = 0.5,
    seed: int = 2009,
    verify_pairs: int = 40,
) -> list[Table1Row]:
    """Regenerate Table 1 on a G(n, p) "any graph" and a UDG instance."""
    rows: list[Table1Row] = []

    g_any = random_connected_gnp(n_any, 2.5 / n_any, seed=derive_seed(seed, "any"))
    udg_full, _pts = scaled_udg(n_udg, target_degree=12.0, seed=seed)
    g_udg, _ids = largest_component(udg_full)

    # Row 1 — regular multiplicative spanners on "any graph".
    t = 2 * k - 1
    h_greedy = greedy_spanner(g_any, t)
    h_bs = baswana_sen_spanner(g_any, k, seed=derive_seed(seed, "bs"))
    ok1 = is_remote_spanner(h_greedy, g_any, float(t), 0.0) and is_remote_spanner(
        h_bs, g_any, float(t), 0.0
    )
    rows.append(
        Table1Row(
            1,
            "any graph",
            f"({t},0)-spanner",
            h_greedy.num_edges,
            round(h_greedy.num_edges / g_any.num_nodes, 2),
            "-",
            ok1,
            f"greedy; Baswana-Sen: {h_bs.num_edges} edges",
        )
    )

    # Row 2 — (k, 0)-remote-spanner via a (k, k−1)-spanner ([2] translation).
    h_add = additive_two_spanner(g_any)
    ok2 = is_remote_spanner(h_add, g_any, 2.0, 0.0)
    rows.append(
        Table1Row(
            2,
            "any graph",
            "(2,0)-rem.-span. via (1,2)-spanner",
            h_add.num_edges,
            round(h_add.num_edges / g_any.num_nodes, 2),
            "-",
            ok2,
            "additive spanner is (2,1)-spanner => (2,0)-remote-spanner",
        )
    )

    # Row 3 — the trivial (1, 0)-spanner keeps everything.
    rows.append(
        Table1Row(
            3,
            "any graph",
            "(1,0)-spanner",
            g_any.num_edges,
            round(g_any.num_edges / g_any.num_nodes, 2),
            "-",
            True,
            "all edges by definition",
        )
    )

    # Row 4 — Theorem 2 on "any graph": k-connecting (1, 0)-remote-spanner.
    rs_k = build_k_connecting_spanner(g_any, k=k)
    dist_run = run_remspan(g_any, "kcover", k=k)
    pairs = sample_pairs(g_any, verify_pairs, seed=derive_seed(seed, "pairs4"))
    ok4 = is_k_connecting_remote_spanner(rs_k.graph, g_any, k, 1.0, 0.0, pairs=pairs)
    lb = k_connecting_spanner_lower_bound(g_any, k)
    rows.append(
        Table1Row(
            4,
            "any graph",
            f"{k}-conn. (1,0)-rem.-span.",
            rs_k.num_edges,
            round(rs_k.num_edges / g_any.num_nodes, 2),
            dist_run.communication_rounds,
            ok4,
            f"opt lower bound {lb}; ratio {rs_k.num_edges / lb:.2f}",
        )
    )

    # Row 5 — same construction, random UDG input (the sparsity headline).
    rs_udg = build_k_connecting_spanner(g_udg, k=1)
    ok5 = is_remote_spanner(rs_udg.graph, g_udg, 1.0, 0.0)
    rows.append(
        Table1Row(
            5,
            f"rand. UDG (n={g_udg.num_nodes})",
            "(1,0)-rem.-span.",
            rs_udg.num_edges,
            round(rs_udg.num_edges / g_udg.num_nodes, 2),
            3,  # 2r−1+2β with r=2, β=0; asserted by the distributed tests
            ok5,
            f"full topology: {g_udg.num_edges} edges",
        )
    )

    # Row 6 — external: [9] needs the underlying metric distances.
    rows.append(
        Table1Row(
            6,
            "UBG known dist.",
            "(1+eps,0)-spanner [9]",
            "-",
            "-",
            "-",
            "-",
            "external baseline: requires metric distances, O(log* n) time",
        )
    )

    # Row 7 — Theorem 1 on the UDG.
    rs_eps = build_remote_spanner(g_udg, epsilon=epsilon, method="mis")
    ok7 = is_remote_spanner(
        rs_eps.graph, g_udg, rs_eps.guarantee.alpha, rs_eps.guarantee.beta
    )
    r = 1 + round(1.0 / (rs_eps.guarantee.alpha - 1.0))
    rows.append(
        Table1Row(
            7,
            f"UBG unknown dist. (n={g_udg.num_nodes})",
            f"(1+{epsilon:g}, {1-2*epsilon:g})-rem.-span.",
            rs_eps.num_edges,
            round(rs_eps.num_edges / g_udg.num_nodes, 2),
            2 * r + 1,  # 2r−1+2β with β=1
            ok7,
            "Th. 1: O(n) edges on doubling UBG",
        )
    )

    # Row 8 — external: fault-tolerant geometric spanners.
    rows.append(
        Table1Row(
            8,
            "points in R^d",
            "k-fault-tol. (1+eps,0)-span. [8]",
            "-",
            "-",
            "-",
            "-",
            "external baseline: sequential, needs coordinates",
        )
    )

    # Row 9 — Theorem 3 on the UDG.
    rs_2c = build_biconnecting_spanner(g_udg)
    pairs9 = sample_pairs(g_udg, verify_pairs, seed=derive_seed(seed, "pairs9"))
    ok9 = is_k_connecting_remote_spanner(rs_2c.graph, g_udg, 2, 2.0, -1.0, pairs=pairs9)
    rows.append(
        Table1Row(
            9,
            f"UBG unknown dist. (n={g_udg.num_nodes})",
            "2-conn. (2,-1)-rem.-span.",
            rs_2c.num_edges,
            round(rs_2c.num_edges / g_udg.num_nodes, 2),
            5,  # 2r−1+2β with r=2, β=1
            ok9,
            "Th. 3: O(n) edges on doubling UBG",
        )
    )
    return rows


def _self_check(rows: list[Table1Row]) -> None:  # pragma: no cover - debug aid
    for row in rows:
        assert row.stretch_ok in (True, "-"), f"row {row.row} failed verification"
