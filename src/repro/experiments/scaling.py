"""Scaling experiments: every asymptotic claim of the evaluation, measured.

Four sweeps, each matching a specific claim:

* :func:`udg_edge_scaling` — Theorem 2 / §3.2: a (1, 0)-remote-spanner of
  a random UDG has expected ``O(k^{2/3} n^{4/3} log n)`` edges while the
  full topology has ``Ω(n²)`` (constant side!).  We sweep n at *fixed
  square side* with growing Poisson intensity, measure spanner and full
  edge counts, and fit exponents — the paper's shape prediction is
  spanner-exponent ≈ 4/3 vs full-topology-exponent ≈ 2.
* :func:`k_sweep` — the ``k^{2/3}`` dependence at fixed n.
* :func:`eps_sweep` — Theorem 1: edges of the (1+ε, 1−2ε)-remote-spanner
  grow like ``ε^{-(p+1)} n``; we sweep ε at fixed n on a UDG (p = 2) and
  fit the ε exponent.
* :func:`linear_ubg` / :func:`tree_size_sweep` — Theorems 1/3 and
  Propositions 3/7: per-node edge counts flatten (O(n) total); individual
  MIS trees grow like ``r^{p+1}`` and k-MIS trees like ``k²``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from ..analysis import PowerLawFit, fit_power_law
from ..core import (
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    build_remote_spanner,
    dom_tree_kmis,
    dom_tree_mis,
)
from ..rng import derive_seed
from .runner import largest_component, poisson_udg, scaled_udg

__all__ = [
    "ScalingRow",
    "ScalingResult",
    "udg_edge_scaling",
    "k_sweep",
    "eps_sweep",
    "linear_ubg",
    "tree_size_sweep",
]


@dataclass
class ScalingRow:
    """One sweep point: the swept value plus measured means."""

    x: float
    values: dict = field(default_factory=dict)


@dataclass
class ScalingResult:
    """A sweep with its fitted exponents."""

    rows: list
    fits: dict  # name -> PowerLawFit

    def exponent(self, name: str) -> float:
        return self.fits[name].exponent


def udg_edge_scaling(
    intensities: "tuple[float, ...]" = (40.0, 80.0, 160.0, 320.0),
    side: float = 4.0,
    k: int = 1,
    trials: int = 3,
    seed: int = 1,
) -> ScalingResult:
    """Theorem 2's n-sweep on Poisson UDGs in a *fixed* square.

    Growing intensity in a fixed square is exactly the paper's model: the
    full topology densifies quadratically while the remote-spanner should
    track ``n^{4/3}`` (× log n).  Reports mean node count, full edges and
    spanner edges per intensity, with power-law fits of both edge counts
    against measured n.
    """
    rows: list[ScalingRow] = []
    ns, fulls, spanners = [], [], []
    for intensity in intensities:
        trial_n, trial_full, trial_sp = [], [], []
        for t in range(trials):
            g, _pts = poisson_udg(intensity, side, derive_seed(seed, "n", int(intensity), t))
            if g.num_nodes < 4:
                continue
            rs = build_k_connecting_spanner(g, k=k)
            trial_n.append(g.num_nodes)
            trial_full.append(g.num_edges)
            trial_sp.append(rs.num_edges)
        row = ScalingRow(
            x=intensity,
            values={
                "n": mean(trial_n),
                "full_edges": mean(trial_full),
                "spanner_edges": mean(trial_sp),
            },
        )
        rows.append(row)
        ns.append(row.values["n"])
        fulls.append(row.values["full_edges"])
        spanners.append(row.values["spanner_edges"])
    fits = {
        "full_edges": fit_power_law(ns, fulls),
        "spanner_edges": fit_power_law(ns, spanners),
    }
    return ScalingResult(rows=rows, fits=fits)


def k_sweep(
    ks: "tuple[int, ...]" = (1, 2, 3, 4, 6),
    intensity: float = 160.0,
    side: float = 4.0,
    trials: int = 3,
    seed: int = 2,
) -> ScalingResult:
    """Theorem 2's k-dependence: spanner edges should grow ≈ k^{2/3} (capped
    by the full topology, so the sweep stays in the unsaturated regime)."""
    rows: list[ScalingRow] = []
    xs, ys = [], []
    for k in ks:
        trial_sp = []
        for t in range(trials):
            g, _pts = poisson_udg(intensity, side, derive_seed(seed, "k", t))
            rs = build_k_connecting_spanner(g, k=k)
            trial_sp.append(rs.num_edges)
        rows.append(ScalingRow(x=k, values={"spanner_edges": mean(trial_sp)}))
        xs.append(float(k))
        ys.append(mean(trial_sp))
    return ScalingResult(rows=rows, fits={"spanner_edges": fit_power_law(xs, ys)})


def eps_sweep(
    epsilons: "tuple[float, ...]" = (1.0, 0.5, 1 / 3, 0.25),
    n: int = 300,
    target_degree: float = 14.0,
    trials: int = 3,
    seed: int = 3,
) -> ScalingResult:
    """Theorem 1's ε-dependence: edges ≈ ε^{-(p+1)}·n on a UDG (p = 2).

    The fit is against 1/ε so the expected exponent is ≈ +(p+1) capped by
    saturation (a UDG has only m edges to give; the small-ε end flattens).
    """
    rows: list[ScalingRow] = []
    xs, ys = [], []
    for eps in epsilons:
        trial_sp = []
        for t in range(trials):
            g_full, _pts = scaled_udg(n, target_degree, derive_seed(seed, "eps", t))
            g, _ids = largest_component(g_full)
            rs = build_remote_spanner(g, epsilon=eps, method="mis")
            trial_sp.append(rs.num_edges / g.num_nodes)
        rows.append(ScalingRow(x=eps, values={"edges_per_n": mean(trial_sp)}))
        xs.append(1.0 / eps)
        ys.append(mean(trial_sp))
    return ScalingResult(rows=rows, fits={"edges_per_n": fit_power_law(xs, ys)})


def linear_ubg(
    ns: "tuple[int, ...]" = (100, 200, 400, 800),
    target_degree: float = 12.0,
    epsilon: float = 0.5,
    trials: int = 3,
    seed: int = 4,
) -> ScalingResult:
    """Theorems 1 and 3: total edges linear in n on constant-degree UDGs.

    Reports edges/n for the ε-spanner and the 2-connecting spanner; both
    series should be ≈ flat (fit exponents of *total* edges ≈ 1).
    """
    rows: list[ScalingRow] = []
    xs, eps_edges, two_edges = [], [], []
    for n in ns:
        t_eps, t_two, t_n = [], [], []
        for t in range(trials):
            g_full, _pts = scaled_udg(n, target_degree, derive_seed(seed, "lin", n, t))
            g, _ids = largest_component(g_full)
            rs_eps = build_remote_spanner(g, epsilon=epsilon, method="mis")
            rs_two = build_biconnecting_spanner(g)
            t_eps.append(rs_eps.num_edges)
            t_two.append(rs_two.num_edges)
            t_n.append(g.num_nodes)
        rows.append(
            ScalingRow(
                x=n,
                values={
                    "n_cc": mean(t_n),
                    "eps_edges_per_n": mean(t_eps) / mean(t_n),
                    "two_conn_edges_per_n": mean(t_two) / mean(t_n),
                },
            )
        )
        xs.append(mean(t_n))
        eps_edges.append(mean(t_eps))
        two_edges.append(mean(t_two))
    fits = {
        "eps_total_edges": fit_power_law(xs, eps_edges),
        "two_conn_total_edges": fit_power_law(xs, two_edges),
    }
    return ScalingResult(rows=rows, fits=fits)


def tree_size_sweep(
    rs_values: "tuple[int, ...]" = (2, 3, 4, 5),
    ks_values: "tuple[int, ...]" = (1, 2, 3, 4),
    n: int = 500,
    target_degree: float = 16.0,
    samples: int = 40,
    seed: int = 5,
) -> "tuple[ScalingResult, ScalingResult]":
    """Propositions 3 and 7: per-tree edge counts vs r and vs k.

    Returns ``(r_sweep, k_sweep)`` with mean |E(T)| over sampled roots;
    expected shapes: ≈ r^{p+1} (p = 2 ⇒ cubic-ish, boundary-dampened) and
    ≈ k² (quadratic-ish, saturating once the 2-ring is exhausted).
    """
    g_full, _pts = scaled_udg(n, target_degree, derive_seed(seed, "tree"))
    g, _ids = largest_component(g_full)
    roots = list(range(0, g.num_nodes, max(1, g.num_nodes // samples)))

    r_rows, r_xs, r_ys = [], [], []
    for r in rs_values:
        sizes = [dom_tree_mis(g, u, r).num_edges for u in roots]
        r_rows.append(ScalingRow(x=r, values={"tree_edges": mean(sizes)}))
        r_xs.append(float(r))
        r_ys.append(mean(sizes))
    k_rows, k_xs, k_ys = [], [], []
    for k in ks_values:
        sizes = [dom_tree_kmis(g, u, k).num_edges for u in roots]
        k_rows.append(ScalingRow(x=k, values={"tree_edges": mean(sizes)}))
        k_xs.append(float(k))
        k_ys.append(mean(sizes))
    return (
        ScalingResult(rows=r_rows, fits={"tree_edges": fit_power_law(r_xs, r_ys)}),
        ScalingResult(rows=k_rows, fits={"tree_edges": fit_power_law(k_xs, k_ys)}),
    )
