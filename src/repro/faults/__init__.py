"""Deterministic fault-injection plane — chaos testing for the parallel stack.

The supervision and degradation layers of :mod:`repro.parallel` exist to
survive failures that unit tests cannot produce on demand: a worker
process dying mid-task (or worse, mid-seqlock-write), a shared-memory
allocation failing, a worker wedging past the task timeout, a result
message lost on the queue.  This module makes every one of those events
*injectable, seeded and replayable*:

* :class:`FaultRule` — one fault site plus its firing policy (per
  -opportunity probability, optional fire-count cap, skip-first window,
  duration for wedge/delay sites);
* :class:`FaultPlan` — a named, seeded set of rules with a compact
  string ``spec()`` / :meth:`FaultPlan.parse` round-trip, so a plan can
  ride an environment variable into ``spawn`` workers;
* **hooks** — :func:`on_task_start`, :func:`on_result`,
  :func:`on_shm_create`, :func:`on_shm_attach`,
  :func:`on_begin_row_write`, compiled into :mod:`repro.parallel` behind
  the module-level ``active`` flag (one attribute load when disabled —
  the hooks-off overhead bar in ``BENCH_faults.json`` holds the plane to
  ≤ 2%).

Installation follows the :mod:`repro.analysis.sanitize` template so a
plan survives both ``fork`` and ``spawn``: arm via environment
(``REPRO_FAULTS=1`` — the :mod:`repro.tuning` gate — plus
``REPRO_FAULT_PLAN=<spec>``) and :func:`maybe_install_from_env` installs
at :mod:`repro.parallel` import time, which ``spawn`` workers re-run;
``fork`` workers inherit the installed state directly and re-seed their
private stream in :func:`worker_reset`.

Determinism: every firing decision comes from a
:func:`repro.rng.derive_seed`-keyed generator — ``(plan seed, "faults",
process role)`` — so a chaos run replays bit-identically under the same
plan, worker count and start method.  Crash-flavoured faults
(``task.crash``, ``write.crash``, ``worker.wedge``) only ever fire
inside worker processes (the parent hosts the supervisor that must
survive them); shm faults may fire anywhere, they raise a recoverable
``OSError``.

Fault sites
-----------

=================  ========================================================
``task.crash``     ``os._exit`` at task start (worker dies mid-task)
``write.crash``    ``os._exit`` right after the seqlock version goes odd
                   (worker dies mid-versioned-write; readers must spin,
                   the supervisor must repair the torn row)
``worker.wedge``   sleep past ``task_timeout`` at task start
``shm.alloc``      simulated ``OSError`` from block creation
``shm.attach``     simulated ``OSError`` from block attachment
``result.drop``    a task's result message is silently discarded
``result.delay``   a task's result message is delayed by ``~duration``
``lsa.drop``       a link-state update is lost on a distributed transport
``lsa.delay``      a link-state update is withheld for ``~duration`` rounds
=================  ========================================================

The two ``lsa.*`` sites target the distributed actor tier's transports
(:mod:`repro.distributed.transport`), not the process pool: they fire in
whichever process hosts the transport (``_in_worker`` does not gate
them), and only against topology-bearing kinds (``lsa``/``full``) — the
anti-entropy control traffic must survive or a lossy plan could never
converge.

Scenario-level faults — regional outage, partition + heal, flash-crowd
hotspot jumps — are graph *workloads*, not process faults, and live in
:mod:`repro.dynamic.events` / :mod:`repro.dynamic.traffic`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ParameterError
from ..rng import derive_seed, ensure_rng

__all__ = [
    "FaultPlan",
    "FaultRule",
    "PLANS",
    "SITES",
    "active",
    "arm_env",
    "current_plan",
    "enabled_in_env",
    "fired",
    "install",
    "maybe_install_from_env",
    "on_begin_row_write",
    "on_result",
    "on_shm_attach",
    "on_shm_create",
    "on_task_start",
    "on_wire_send",
    "uninstall",
    "worker_reset",
]

#: Exit codes crash faults die with — distinct so the supervisor's
#: exitcode report (and the tests) can tell the sites apart.
EXIT_TASK_CRASH = 43
EXIT_WRITE_CRASH = 44

#: Every fault site a rule may name.
SITES = (
    "task.crash",
    "write.crash",
    "worker.wedge",
    "shm.alloc",
    "shm.attach",
    "result.drop",
    "result.delay",
    "lsa.drop",
    "lsa.delay",
)

#: Wire kinds the ``lsa.*`` sites may target: topology floods only.
#: HELLO beacons and resend requests are the repair channel — a plan
#: that could drop them would make convergence-under-loss unprovable.
_LSA_KINDS = frozenset({"lsa", "full"})

_CRASH_SITES = frozenset({"task.crash", "write.crash", "worker.wedge"})


@dataclass(frozen=True)
class FaultRule:
    """One fault site plus its firing policy.

    ``p`` is the per-opportunity firing probability; ``count`` caps the
    total fires (-1 = unlimited); ``after`` skips the first *after*
    opportunities at the site; ``duration`` is the sleep for
    ``worker.wedge`` / ``result.delay`` (ignored elsewhere).
    ``fresh_only`` restricts the rule to a worker's first incarnation:
    a respawned worker (the supervisor passes its respawn count back in)
    is exempt, which is how a plan says "crash exactly once, then heal"
    — without it a ``p=1`` crash rule would fire again in every respawn
    and (correctly) end in poison quarantine.
    """

    site: str
    p: float = 1.0
    count: int = -1
    after: int = 0
    duration: float = 0.0
    fresh_only: bool = False

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ParameterError(f"unknown fault site {self.site!r} (want one of {SITES})")
        if not (0.0 <= self.p <= 1.0):
            raise ParameterError(f"fault probability must be in [0, 1], got {self.p!r}")
        if self.count < -1 or self.after < 0 or self.duration < 0:
            raise ParameterError(
                f"bad rule bounds for {self.site}: count={self.count} "
                f"after={self.after} duration={self.duration}"
            )

    def spec(self) -> str:
        out = f"{self.site}@{self.p:g}"
        if self.count != -1:
            out += f"x{self.count}"
        if self.after:
            out += f"+{self.after}"
        if self.duration:
            out += f"~{self.duration:g}"
        if self.fresh_only:
            out += "!"
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of :class:`FaultRule`\\ s.

    The ``spec()`` string (``name:seed:site@p[xCOUNT][+AFTER][~DUR],...``)
    round-trips through :meth:`parse`, which is how a plan crosses the
    ``REPRO_FAULT_PLAN`` environment variable into ``spawn`` workers.
    """

    name: str
    seed: int
    rules: "tuple[FaultRule, ...]"

    def spec(self) -> str:
        return f"{self.name}:{self.seed}:" + ",".join(r.spec() for r in self.rules)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        parts = spec.split(":", 2)
        if len(parts) != 3 or not parts[0]:
            raise ParameterError(
                f"fault plan spec must be 'name:seed:rule,...', got {spec!r}"
            )
        name, seed_s, rules_s = parts
        try:
            seed = int(seed_s)
        except ValueError:
            raise ParameterError(f"fault plan seed must be an int, got {seed_s!r}") from None
        rules = []
        for chunk in filter(None, rules_s.split(",")):
            rules.append(_parse_rule(chunk))
        return cls(name, seed, tuple(rules))


def _parse_rule(chunk: str) -> FaultRule:
    site, sep, policy = chunk.partition("@")
    if not sep:
        return FaultRule(site)
    fresh_only = policy.endswith("!")
    if fresh_only:
        policy = policy[:-1]
    duration = 0.0
    if "~" in policy:
        policy, dur_s = policy.split("~", 1)
        duration = float(dur_s)
    after = 0
    if "+" in policy:
        policy, after_s = policy.split("+", 1)
        after = int(after_s)
    count = -1
    if "x" in policy:
        policy, count_s = policy.split("x", 1)
        count = int(count_s)
    try:
        p = float(policy) if policy else 1.0
    except ValueError:
        raise ParameterError(f"bad fault rule {chunk!r}") from None
    return FaultRule(
        site, p=p, count=count, after=after, duration=duration, fresh_only=fresh_only
    )


#: Canned plans for the chaos CLI, the property suite and the benchmark.
#: ``quiet`` is armed-but-silent (every probability zero) — the plan the
#: hooks-on-but-idle overhead measurement runs under.
PLANS = {
    "quiet": FaultPlan("quiet", 0, (FaultRule("task.crash", p=0.0),)),
    "crashy": FaultPlan("crashy", 9, (FaultRule("task.crash", p=0.05),)),
    # write.crash fires per *row write*, and a full refresh writes every
    # row — keep the rate low enough that a from-scratch build has a real
    # chance per attempt, or the poison quarantine dominates the soak.
    "torn-writer": FaultPlan("torn-writer", 9, (FaultRule("write.crash", p=0.008),)),
    "wedge": FaultPlan("wedge", 9, (FaultRule("worker.wedge", p=0.02, count=2, duration=30.0),)),
    "lossy-queue": FaultPlan(
        "lossy-queue",
        9,
        (FaultRule("result.drop", p=0.03), FaultRule("result.delay", p=0.05, duration=0.02)),
    ),
    "flaky-shm": FaultPlan(
        "flaky-shm", 9, (FaultRule("shm.alloc", p=0.2, count=1), FaultRule("shm.attach", p=0.2, count=1))
    ),
    "mayhem": FaultPlan(
        "mayhem",
        9,
        (
            FaultRule("task.crash", p=0.03),
            FaultRule("write.crash", p=0.008),
            FaultRule("result.delay", p=0.03, duration=0.01),
        ),
    ),
    # Wire plans are count-capped: the actor tier must *provably*
    # converge after the loss budget is spent (anti-entropy retransmits
    # also traverse the faulted transport).
    "lsa-lossy": FaultPlan("lsa-lossy", 9, (FaultRule("lsa.drop", p=0.5, count=4),)),
    "lsa-slow": FaultPlan(
        "lsa-slow", 9, (FaultRule("lsa.delay", p=0.4, count=6, duration=2.0),)
    ),
}


#: Cheap guard the hooks in repro.parallel check before paying anything.
active: bool = False

_plan: "FaultPlan | None" = None
_rng = None
_in_worker: bool = False
_incarnation: int = 0
#: site -> opportunities seen / fires so far (per process).
_seen: "dict[str, int]" = {}
_fires: "dict[str, int]" = {}

_FALSEY = frozenset({"", "0", "off", "false", "no"})

#: Environment protocol: the gate is the ``faults`` tuning knob, the plan
#: itself rides a second variable (a spec string is not an int knob).
ENV_GATE = "REPRO_FAULTS"
ENV_PLAN = "REPRO_FAULT_PLAN"


def enabled_in_env(environ: "dict[str, str] | None" = None) -> "FaultPlan | None":
    """The plan the environment asks for, or ``None`` (off)."""
    env = os.environ if environ is None else environ
    if env.get(ENV_GATE, "").strip().lower() in _FALSEY:
        return None
    spec = env.get(ENV_PLAN, "").strip()
    if not spec:
        return None
    if spec in PLANS:
        return PLANS[spec]
    return FaultPlan.parse(spec)


def install(plan: FaultPlan) -> None:
    """Arm *plan* in this process (the parent role; workers re-seed via
    :func:`worker_reset`)."""
    global active, _plan, _rng, _in_worker, _incarnation
    _plan = plan
    _rng = ensure_rng(derive_seed(plan.seed, "faults", "parent"))
    _in_worker = False
    _incarnation = 0
    _seen.clear()
    _fires.clear()
    active = True


def uninstall() -> None:
    """Disarm and drop all per-process state."""
    global active, _plan, _rng, _in_worker, _incarnation
    active = False
    _plan = None
    _rng = None
    _in_worker = False
    _incarnation = 0
    _seen.clear()
    _fires.clear()


def maybe_install_from_env() -> None:
    """Install iff the environment says so (import-time hook).

    Called when :mod:`repro.parallel` is imported, which makes ``spawn``
    workers self-arming: the child re-imports the package before it
    touches any shared state.
    """
    plan = enabled_in_env()
    if plan is not None and not active:
        install(plan)


def arm_env(plan: FaultPlan, environ: "dict[str, str] | None" = None) -> None:
    """Write the gate + spec into *environ* (default ``os.environ``).

    The sanctioned way for drivers (the chaos CLI, the benchmark) to arm
    a plan: the variables are inherited by ``fork`` *and* re-read by
    ``spawn`` workers, and a following :func:`maybe_install_from_env`
    arms the calling process itself.
    """
    env = os.environ if environ is None else environ
    env[ENV_GATE] = "1"
    env[ENV_PLAN] = plan.spec()


def current_plan() -> "FaultPlan | None":
    return _plan


def worker_reset(worker_id: int, incarnation: int = 0) -> None:
    """Re-seed for a worker process (fork inherits the parent's stream;
    both start methods must give worker *i* its own deterministic one).

    *incarnation* is the supervisor's respawn count for this worker id —
    part of the seed (a respawned worker replays a *different* stream,
    not its predecessor's fate) and the gate for ``fresh_only`` rules.
    """
    global _rng, _in_worker, _incarnation
    if not active:
        return
    assert _plan is not None
    _rng = ensure_rng(derive_seed(_plan.seed, "faults", "worker", worker_id, incarnation))
    _in_worker = True
    _incarnation = incarnation
    _seen.clear()
    _fires.clear()


def fired() -> "dict[str, int]":
    """Fires per site in this process so far (test/report helper)."""
    return dict(_fires)


def _fire(site: str) -> "FaultRule | None":
    """Does a rule for *site* trigger at this opportunity?"""
    if _plan is None:
        return None
    hit = None
    for rule in _plan.rules:
        if rule.site != site:
            continue
        if rule.fresh_only and _incarnation > 0:
            return None
        seen = _seen.get(site, 0)
        _seen[site] = seen + 1
        if seen < rule.after:
            return None
        if rule.count != -1 and _fires.get(site, 0) >= rule.count:
            return None
        if rule.p >= 1.0 or (rule.p > 0.0 and float(_rng.random()) < rule.p):
            hit = rule
        break  # first matching rule owns the site
    if hit is not None:
        _fires[site] = _fires.get(site, 0) + 1
    return hit


# --------------------------------------------------------------------- #
# hooks (called from repro.parallel behind `if _faults.active:`)
# --------------------------------------------------------------------- #


def on_task_start(fn: str) -> None:
    """Worker-side, before a task executes: crash or wedge sites.

    Observability tasks are exempt — killing a worker inside the metric
    snapshot protocol would test the obs plumbing, not the supervisor.
    """
    if not _in_worker or fn.startswith("obs_"):
        return
    if _fire("task.crash") is not None:
        os._exit(EXIT_TASK_CRASH)
    rule = _fire("worker.wedge")
    if rule is not None:
        import time

        time.sleep(rule.duration if rule.duration > 0 else 3600.0)


def on_result(fn: str) -> "tuple[str, float]":
    """Worker-side, before a task result is queued.

    Returns ``("send", 0)``, ``("drop", 0)`` or ``("delay", seconds)``.
    """
    if not _in_worker or fn.startswith("obs_"):
        return ("send", 0.0)
    if _fire("result.drop") is not None:
        return ("drop", 0.0)
    rule = _fire("result.delay")
    if rule is not None:
        return ("delay", rule.duration if rule.duration > 0 else 0.05)
    return ("send", 0.0)


def on_wire_send(kind: str) -> "tuple[str, float]":
    """Transport-side, before a frame leaves a distributed endpoint.

    *kind* is the codec wire tag; only topology floods (``lsa``/``full``)
    are eligible — control traffic always goes through.  Returns
    ``("send", 0)``, ``("drop", 0)`` or ``("delay", rounds)`` where the
    delay is measured in transport rounds (virtual time on the loopback
    transport), not seconds.  Fires in whichever process hosts the
    transport: the actor tier is in-process, so ``_in_worker`` does not
    gate this site.
    """
    if kind not in _LSA_KINDS:
        return ("send", 0.0)
    if _fire("lsa.drop") is not None:
        return ("drop", 0.0)
    rule = _fire("lsa.delay")
    if rule is not None:
        return ("delay", rule.duration if rule.duration > 0 else 1.0)
    return ("send", 0.0)


def on_shm_create(name: str) -> None:
    """Any process, at shared-memory block creation."""
    if _fire("shm.alloc") is not None:
        raise OSError(f"injected shm allocation failure for {name}")


def on_shm_attach(name: str) -> None:
    """Any process, at shared-memory block attachment."""
    if _fire("shm.attach") is not None:
        raise OSError(f"injected shm attach failure for {name}")


def on_begin_row_write(row: int) -> None:
    """Worker-side, *after* the row version went odd: the torn-write crash.

    Firing here leaves row *row* mid-write forever as far as readers can
    tell — exactly the state :meth:`SharedMatrix.repair_torn_rows
    <repro.parallel.shm.SharedMatrix.repair_torn_rows>` exists to mend.
    """
    if not _in_worker:
        return
    if _fire("write.crash") is not None:
        os._exit(EXIT_WRITE_CRASH)
