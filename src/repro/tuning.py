"""Runtime-tunable performance knobs for the traversal and parallel engines.

The CSR traversal engine has two crossover constants that used to be frozen
module constants in :mod:`repro.graph.traversal`:

* ``batch_chunk`` — sources expanded simultaneously per
  :func:`~repro.graph.traversal.batched_bfs` chunk (cache-friendliness vs
  numpy call amortization);
* ``auto_min_nodes`` — node count below which ``backend="auto"`` stays on
  the set backend (numpy call overhead exceeds the whole BFS on toy
  graphs).

Their best values depend on the hardware (cache sizes, numpy build), so
they are now runtime-configurable, three ways, in increasing precedence:

1. **defaults** — the values measured on the reference 2200-node UDG;
2. **environment** — ``REPRO_BATCH_CHUNK``, ``REPRO_AUTO_MIN_NODES``,
   ``REPRO_PARALLEL_MIN_NODES`` (read once at first use);
3. **programmatic** — :func:`configure` (persistent) or the
   :func:`overridden` context manager (scoped, exception-safe — what the
   tests use).

``parallel_min_nodes`` is the analogous gate for the multiprocessing fan
-out of :mod:`repro.parallel`: below it, ``workers="auto"`` never engages
(the per-task IPC overhead exceeds the whole BFS).  ``auto_max_workers``
caps how many processes ``workers="auto"`` spawns once it does engage
(``REPRO_AUTO_MAX_WORKERS``), and ``small_frontier`` is the BFS frontier
size below which the traversal expands via index lists instead of boolean
row masks (``REPRO_SMALL_FRONTIER``).

``obs`` gates the :mod:`repro.obs` instrumentation (``REPRO_OBS``; the
strings ``off``/``false``/``no`` mean ``0``, ``on``/``true``/``yes`` mean
``1``).  ``faults`` is the analogous gate for the fault-injection plane
(``REPRO_FAULTS``, see :mod:`repro.faults`) — both are allowed to be
zero, and ``faults`` *defaults* to zero: injection is strictly opt-in.

``drain_timeout`` (``REPRO_DRAIN_TIMEOUT``, seconds, float) bounds how
long :class:`~repro.parallel.pool.WorkerPool` waits for the final
metric snapshots of stopped workers, and ``read_retries``
(``REPRO_READ_RETRIES``) is the seqlock reader retry budget before
:class:`~repro.errors.TornReadError` — both were hard-coded constants
before the fault plane made tightening them under test necessary.

``python -m repro tune`` measures the crossovers on the current hardware
(:func:`calibrate`) and prints recommended values plus the matching
``export`` lines.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator

from .errors import ParameterError

__all__ = [
    "Tuning",
    "get",
    "configure",
    "reset",
    "overridden",
    "calibrate",
    "DEFAULT_BATCH_CHUNK",
    "DEFAULT_AUTO_MIN_NODES",
    "DEFAULT_PARALLEL_MIN_NODES",
    "DEFAULT_AUTO_MAX_WORKERS",
    "DEFAULT_SMALL_FRONTIER",
    "DEFAULT_OBS",
    "DEFAULT_FAULTS",
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_READ_RETRIES",
]

#: Sources per :func:`~repro.graph.traversal.batched_bfs` chunk (64 measured
#: best on the 2200-node UDG of ``benchmarks/test_bench_traversal.py``).
DEFAULT_BATCH_CHUNK = 64

#: Below this node count ``backend="auto"`` stays on sets.
DEFAULT_AUTO_MIN_NODES = 64

#: Below this node count ``workers="auto"`` stays single-process.
DEFAULT_PARALLEL_MIN_NODES = 768

#: Cap for ``workers="auto"`` — beyond this the serving fan-out is queue
#: -bound, and benchmark boxes rarely give more truly-free cores.
DEFAULT_AUTO_MAX_WORKERS = 4

#: Frontiers at or below this size take the index-list expansion path in
#: :func:`~repro.graph.traversal.bfs_distances` (boolean-mask row scans
#: only pay off once the frontier is a decent fraction of the graph).
DEFAULT_SMALL_FRONTIER = 16

#: Observability on by default — :mod:`repro.obs` is designed to be cheap
#: enough to leave on; ``REPRO_OBS=off`` (or 0) kills it for bake-offs.
DEFAULT_OBS = 1

#: Fault injection off by default — ``REPRO_FAULTS=1`` arms the hooks in
#: :mod:`repro.faults` (the plan itself comes from ``REPRO_FAULT_PLAN``).
DEFAULT_FAULTS = 0

#: Seconds :class:`~repro.parallel.pool.WorkerPool` waits for the final
#: metric snapshots of gracefully stopped workers.
DEFAULT_DRAIN_TIMEOUT = 1.0

#: Seqlock reader retry budget (see :mod:`repro.parallel.shm`) — generous
#: enough to ride out any live writer, small enough to surface a dead one.
DEFAULT_READ_RETRIES = 200_000

_ENV_VARS = {
    "batch_chunk": "REPRO_BATCH_CHUNK",
    "auto_min_nodes": "REPRO_AUTO_MIN_NODES",
    "parallel_min_nodes": "REPRO_PARALLEL_MIN_NODES",
    "auto_max_workers": "REPRO_AUTO_MAX_WORKERS",
    "small_frontier": "REPRO_SMALL_FRONTIER",
    "obs": "REPRO_OBS",
    "faults": "REPRO_FAULTS",
    "drain_timeout": "REPRO_DRAIN_TIMEOUT",
    "read_retries": "REPRO_READ_RETRIES",
}

#: Knobs allowed to be zero (everything else must be >= 1).
_ZERO_OK = frozenset({"obs", "faults"})

#: Knobs carrying a duration in seconds — validated and parsed as floats
#: (every other knob is a strict int).
_FLOAT_KNOBS = frozenset({"drain_timeout"})

#: String spellings accepted for boolean-flavoured env knobs.
_ENV_WORDS = {"off": 0, "false": 0, "no": 0, "on": 1, "true": 1, "yes": 1}


@dataclass(frozen=True)
class Tuning:
    """One immutable snapshot of every tunable (see module docstring)."""

    batch_chunk: int = DEFAULT_BATCH_CHUNK
    auto_min_nodes: int = DEFAULT_AUTO_MIN_NODES
    parallel_min_nodes: int = DEFAULT_PARALLEL_MIN_NODES
    auto_max_workers: int = DEFAULT_AUTO_MAX_WORKERS
    small_frontier: int = DEFAULT_SMALL_FRONTIER
    obs: int = DEFAULT_OBS
    faults: int = DEFAULT_FAULTS
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    read_retries: int = DEFAULT_READ_RETRIES

    def __post_init__(self) -> None:
        for name in _ENV_VARS:
            value = getattr(self, name)
            if name in _FLOAT_KNOBS:
                if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
                    raise ParameterError(f"{name} must be a positive number, got {value!r}")
                continue
            floor = 0 if name in _ZERO_OK else 1
            if not isinstance(value, int) or value < floor:
                kind = "non-negative" if floor == 0 else "positive"
                raise ParameterError(f"{name} must be a {kind} int, got {value!r}")


def _from_env() -> Tuning:
    kwargs: "dict[str, float]" = {}
    for field, var in _ENV_VARS.items():
        raw = os.environ.get(var)
        if raw is None:
            continue
        if raw.strip().lower() in _ENV_WORDS:
            kwargs[field] = _ENV_WORDS[raw.strip().lower()]
            continue
        try:
            kwargs[field] = float(raw) if field in _FLOAT_KNOBS else int(raw)
        except ValueError:
            kind = "a number" if field in _FLOAT_KNOBS else "an int"
            raise ParameterError(f"{var} must be {kind}, got {raw!r}") from None
    return Tuning(**kwargs)


_active: "Tuning | None" = None  # lazily initialized from the environment


def get() -> Tuning:
    """The active tuning snapshot (defaults + env + :func:`configure`)."""
    global _active
    if _active is None:
        _active = _from_env()
    return _active


def configure(**kwargs: int) -> Tuning:
    """Persistently override tunables; returns the new active snapshot.

    Unknown names raise :class:`~repro.errors.ParameterError`; values are
    validated like the dataclass fields.  Applies process-wide from the next
    ``get()`` on (worker processes of :mod:`repro.parallel` inherit the
    environment, not programmatic overrides).
    """
    global _active
    unknown = set(kwargs) - set(_ENV_VARS)
    if unknown:
        raise ParameterError(f"unknown tunables {sorted(unknown)} (want {sorted(_ENV_VARS)})")
    _active = replace(get(), **kwargs)
    return _active


def reset() -> None:
    """Drop every programmatic override (environment applies again)."""
    global _active
    _active = None


@contextmanager
def overridden(**kwargs: int) -> "Iterator[Tuning]":
    """Scoped :func:`configure` — restores the previous snapshot on exit."""
    global _active
    previous = get()
    try:
        yield configure(**kwargs)
    finally:
        _active = previous


# --------------------------------------------------------------------- #
# hardware calibration (python -m repro tune)
# --------------------------------------------------------------------- #


def _time_best(fn: "Callable[[], object]", repeats: int = 3) -> float:
    """Best-of-*repeats* wall time of ``fn()`` (min filters scheduler noise)."""
    # Function-local import: obs imports tuning at module level, so the
    # reverse edge must stay lazy.
    from .obs.timing import time_best

    return time_best(fn, repeats)


def calibrate(n: int = 1500, seed: int = 2009, quick: bool = False) -> "dict[str, Any]":
    """Measure the crossover points on the current hardware.

    Returns a dict with the per-size set-vs-CSR timings, the per-chunk
    batched-APSP timings, and the recommended ``auto_min_nodes`` /
    ``batch_chunk`` values.  Drives ``python -m repro tune``; uses only
    seeded generators so two runs on the same machine agree.
    """
    from .graph.generators import random_connected_gnp
    from .graph.traversal import batched_bfs, bfs_distances
    from .rng import derive_seed

    # -- auto_min_nodes: smallest n where one CSR BFS beats one set BFS.
    sizes = (16, 32, 64, 128, 256) if quick else (16, 32, 64, 128, 256, 512)
    crossover_rows = []
    recommended_min = sizes[-1] * 2  # pessimistic default: csr never won
    for size in sizes:
        g = random_connected_gnp(size, min(1.0, 4.0 / size), seed=derive_seed(seed, "tune", size))
        csr = g.freeze()
        t_sets = _time_best(lambda: [bfs_distances(g, s, backend="sets") for s in range(0, size, 4)])
        t_csr = _time_best(lambda: [bfs_distances(csr, s) for s in range(0, size, 4)])
        crossover_rows.append({"n": size, "sets_s": t_sets, "csr_s": t_csr})
        if t_csr < t_sets and recommended_min > size:
            recommended_min = size

    # -- batch_chunk: fastest chunk for a full batched APSP at ~n nodes.
    apsp_n = max(256, n // 4) if quick else n
    g = random_connected_gnp(apsp_n, 4.0 / apsp_n, seed=derive_seed(seed, "tune-apsp"))
    csr = g.freeze()
    chunk_rows = []
    best_chunk, best_time = DEFAULT_BATCH_CHUNK, float("inf")
    for chunk in (16, 32, 64, 128, 256):
        t = _time_best(
            lambda c=chunk: [None for _ in batched_bfs(csr, chunk=c, arrays=True)], repeats=2
        )
        chunk_rows.append({"chunk": chunk, "apsp_s": t})
        if t < best_time:
            best_chunk, best_time = chunk, t

    return {
        "auto_min_nodes": {"rows": crossover_rows, "recommended": recommended_min},
        "batch_chunk": {"n": apsp_n, "rows": chunk_rows, "recommended": best_chunk},
        "active": get(),
    }
