"""Wall-clock primitives — the only module that may call ``perf_counter``.

reprolint rule RL007 confines bare ``time.perf_counter()`` timing to
``repro/obs/``; everything else in the codebase times itself through the
:class:`Stopwatch`, :func:`time_best`, and ``obs.span`` helpers so that
timings land in the metrics tree instead of ad-hoc local variables.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Stopwatch", "now", "time_best"]


def now() -> float:
    """Monotonic high-resolution timestamp in seconds."""
    return time.perf_counter()


class Stopwatch:
    """A started-on-construction elapsed-time meter.

    Two method calls replace the ``t0 = perf_counter(); ...; perf_counter()
    - t0`` idiom: construct (or :meth:`restart`) at the start of the
    region, read :meth:`elapsed` at the end.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def restart(self) -> None:
        """Reset the origin to now."""
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._t0


def time_best(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``.

    The minimum over repeats filters scheduler noise; this is the house
    measurement idiom for calibration and benchmarks.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
