"""repro.obs — zero-dependency observability for the serving stack.

One process-local :class:`MetricsRegistry` (counters, gauges, exact-merge
histograms) plus a nesting :func:`span` tracer, cheap enough to leave on.
The ``obs`` tuning knob (env ``REPRO_OBS``, ``off``/``0`` to disable)
gates the module-level helpers to near-zero cost; worker processes
snapshot their registries and ship them back over the pool's result
queue, where :func:`merge_snapshots` folds them into one tree.

Usage::

    from repro import obs

    obs.inc("serve.rows_recomputed", 17)
    with obs.span("serving.recompute_rows") as sp:
        ...
    print(sp.seconds)              # valid even with REPRO_OBS=off
    doc = obs.metrics_document()   # {"schema", "process", "shards", "merged"}
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .. import tuning
from .metrics import (
    COUNT_BOUNDS,
    SCHEMA,
    TIME_BOUNDS_US,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    empty_snapshot,
    format_diff,
    format_snapshot,
    merge_snapshots,
)
from .timing import Stopwatch, now, time_best
from .tracer import Span, Tracer

__all__ = [
    "COUNT_BOUNDS",
    "SCHEMA",
    "TIME_BOUNDS_US",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Stopwatch",
    "Tracer",
    "diff_snapshots",
    "empty_snapshot",
    "enabled",
    "format_diff",
    "format_snapshot",
    "gauge",
    "inc",
    "merge_snapshots",
    "metrics",
    "metrics_document",
    "now",
    "observe",
    "reset",
    "snapshot",
    "snapshot_and_reset",
    "span",
    "time_best",
    "tracer",
]

_registry = MetricsRegistry()
_tracer = Tracer()


def metrics() -> MetricsRegistry:
    """This process's default registry (always counting when used directly)."""
    return _registry


def tracer() -> Tracer:
    """This process's tracer; off until ``tracer().start()``."""
    return _tracer


def enabled() -> bool:
    """Whether the gated helpers record (``obs`` tuning knob / REPRO_OBS)."""
    return tuning.get().obs != 0


def reset() -> None:
    """Clear the default registry and tracer (tests, fresh soaks)."""
    _registry.reset()
    _tracer.clear()


def inc(name: str, value: float = 1) -> None:
    """Gated counter increment into the default registry."""
    if tuning.get().obs != 0:
        _registry.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Gated gauge set into the default registry."""
    if tuning.get().obs != 0:
        _registry.gauge(name, value)


def observe(name: str, value: float, bounds: Sequence[float] | None = None) -> None:
    """Gated histogram observation into the default registry."""
    if tuning.get().obs != 0:
        _registry.observe(name, value, bounds)


def span(name: str, bounds: Sequence[float] | None = None) -> Span:
    """A context manager timing one region.

    Always measures (``.seconds`` is valid regardless of the knob);
    observes the ``<name>.us`` histogram only when obs is enabled, and
    emits a trace event only when the tracer has been started.
    """
    return Span(
        name,
        _registry if tuning.get().obs != 0 else None,
        _tracer if _tracer.active else None,
        bounds,
    )


def snapshot() -> dict:
    return _registry.snapshot()


def snapshot_and_reset() -> dict:
    return _registry.snapshot_and_reset()


def metrics_document(shards: Mapping[int, dict] | None = None) -> dict:
    """The stable ``--metrics`` file schema.

    ``process`` is this process's snapshot, ``shards`` maps worker id to
    that worker's shipped snapshot, and ``merged`` is the exact fold of
    all of them.
    """
    process = _registry.snapshot()
    shard_map = {int(k): v for k, v in (shards or {}).items()}
    merged = merge_snapshots(process, *[shard_map[k] for k in sorted(shard_map)])
    return {
        "schema": SCHEMA,
        "process": process,
        "shards": {str(k): shard_map[k] for k in sorted(shard_map)},
        "merged": merged,
    }
