"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

Design constraints, in order:

* **Exact merges.** Histograms carry explicit bucket boundaries chosen at
  first observation and immutable afterwards, so merging the snapshots of
  W worker processes is pure element-wise addition — the merged histogram
  is bit-identical to the one a single process would have recorded.
* **Cheap enough to leave on.** A counter increment is one dict lookup
  and one float add; a histogram observation adds a ``bisect``.  The
  gating that makes ``REPRO_OBS=off`` near-free lives in
  :mod:`repro.obs` (the package façade), not here — registry methods are
  unconditional so that always-on consumers (``SimStats``) keep counting
  regardless of the knob.
* **Zero dependencies.** Snapshots are plain dict/list/float JSON, the
  wire format workers ship back through the pool's result queue.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from ..errors import ParameterError

__all__ = [
    "COUNT_BOUNDS",
    "SCHEMA",
    "TIME_BOUNDS_US",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "empty_snapshot",
    "format_diff",
    "format_snapshot",
    "merge_snapshots",
]

SCHEMA = "repro.obs/1"

#: Default buckets for durations recorded in microseconds: 10µs .. 10s.
TIME_BOUNDS_US: tuple[float, ...] = (
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    10_000_000.0,
)

#: Default buckets for small cardinalities (dirty-ball sizes, hop counts).
COUNT_BOUNDS: tuple[float, ...] = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1_024.0,
    4_096.0,
)


class Histogram:
    """Fixed-boundary histogram; bucket i counts values <= bounds[i].

    ``counts`` has ``len(bounds) + 1`` cells — the last is the overflow
    bucket.  ``sum``/``min``/``max`` ride along so merged snapshots keep
    exact totals and extrema.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = TIME_BOUNDS_US) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ParameterError("histogram bounds must be non-empty and strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }


class MetricsRegistry:
    """One process's metric tree: name -> counter / gauge / histogram.

    Names are flat dotted strings (``"serve.rows_recomputed"``); the
    snapshot groups them by kind, which is all downstream consumers need.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float, bounds: Sequence[float] | None = None) -> None:
        """Record ``value`` into histogram ``name``.

        ``bounds`` is honoured only on the histogram's first observation;
        later calls reuse the established buckets (merge exactness).
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(TIME_BOUNDS_US if bounds is None else bounds)
        hist.observe(value)

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict:
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: h.snapshot() for name, h in self._histograms.items()},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot_and_reset(self) -> dict:
        snap = self.snapshot()
        self.reset()
        return snap


def empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _merge_histogram(into: dict, snap: dict, name: str) -> dict:
    if into["bounds"] != snap["bounds"]:
        raise ParameterError(
            f"histogram {name!r}: cannot merge mismatched bounds "
            f"{into['bounds']} vs {snap['bounds']}"
        )
    mins = [m for m in (into["min"], snap["min"]) if m is not None]
    maxs = [m for m in (into["max"], snap["max"]) if m is not None]
    return {
        "bounds": list(into["bounds"]),
        "counts": [a + b for a, b in zip(into["counts"], snap["counts"])],
        "count": into["count"] + snap["count"],
        "sum": into["sum"] + snap["sum"],
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
    }


def merge_snapshots(*snapshots: dict) -> dict:
    """Exact merge: counters and histogram cells add; gauges last-write-win."""
    merged = empty_snapshot()
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        merged["gauges"].update(snap.get("gauges", {}))
        for name, hist in snap.get("histograms", {}).items():
            have = merged["histograms"].get(name)
            if have is None:
                merged["histograms"][name] = _merge_histogram(
                    {**hist, "counts": [0] * len(hist["counts"]), "count": 0, "sum": 0.0,
                     "min": None, "max": None},
                    hist,
                    name,
                )
            else:
                merged["histograms"][name] = _merge_histogram(have, hist, name)
    return merged


def diff_snapshots(old: dict, new: dict) -> dict:
    """``new - old`` for counters and histogram totals; gauges become pairs.

    Names only present in one side show with the other treated as zero.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    names = set(old.get("counters", {})) | set(new.get("counters", {}))
    for name in sorted(names):
        delta = new.get("counters", {}).get(name, 0) - old.get("counters", {}).get(name, 0)
        if delta:
            out["counters"][name] = delta
    gnames = set(old.get("gauges", {})) | set(new.get("gauges", {}))
    for name in sorted(gnames):
        was = old.get("gauges", {}).get(name)
        now_ = new.get("gauges", {}).get(name)
        if was != now_:
            out["gauges"][name] = {"old": was, "new": now_}
    hnames = set(old.get("histograms", {})) | set(new.get("histograms", {}))
    for name in sorted(hnames):
        was_h = old.get("histograms", {}).get(name)
        now_h = new.get("histograms", {}).get(name)
        d_count = (now_h["count"] if now_h else 0) - (was_h["count"] if was_h else 0)
        d_sum = (now_h["sum"] if now_h else 0.0) - (was_h["sum"] if was_h else 0.0)
        if d_count or d_sum:
            out["histograms"][name] = {"count": d_count, "sum": d_sum}
    return out


def _format_lines(snap: dict) -> Iterable[str]:
    counters = snap.get("counters", {})
    if counters:
        yield "counters:"
        for name in sorted(counters):
            yield f"  {name:<40} {counters[name]:>14,.0f}"
    gauges = snap.get("gauges", {})
    if gauges:
        yield "gauges:"
        for name in sorted(gauges):
            yield f"  {name:<40} {gauges[name]:>14,.3f}"
    histograms = snap.get("histograms", {})
    if histograms:
        yield "histograms:"
        for name in sorted(histograms):
            h = histograms[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lo = 0.0 if h["min"] is None else h["min"]
            hi = 0.0 if h["max"] is None else h["max"]
            yield (
                f"  {name:<40} n={h['count']:<10,} mean={mean:,.2f} "
                f"min={lo:,.2f} max={hi:,.2f}"
            )


def format_snapshot(snap: dict) -> str:
    """Human-readable rendering for ``python -m repro obs``."""
    lines = list(_format_lines(snap))
    return "\n".join(lines) if lines else "(empty snapshot)"


def format_diff(old: dict, new: dict) -> str:
    """Render ``diff_snapshots(old, new)`` with explicit +/- deltas."""
    delta = diff_snapshots(old, new)
    lines: list[str] = []
    if delta["counters"]:
        lines.append("counters (new - old):")
        for name in sorted(delta["counters"]):
            lines.append(f"  {name:<40} {delta['counters'][name]:>+14,.0f}")
    if delta["gauges"]:
        lines.append("gauges (old -> new):")
        for name in sorted(delta["gauges"]):
            pair = delta["gauges"][name]
            lines.append(f"  {name:<40} {pair['old']} -> {pair['new']}")
    if delta["histograms"]:
        lines.append("histograms (new - old):")
        for name in sorted(delta["histograms"]):
            h = delta["histograms"][name]
            lines.append(f"  {name:<40} n={h['count']:+,} sum={h['sum']:+,.2f}")
    return "\n".join(lines) if lines else "(no differences)"
