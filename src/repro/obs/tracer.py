"""Nesting span tracer with Chrome trace-event export.

The tracer is off by default; ``--trace`` CLI flags (or tests) turn it on
with :meth:`Tracer.start`.  Spans always measure wall-clock (report
``seconds`` fields depend on it even with observability off); whether the
measurement is *recorded* anywhere is what the gates control — see
:class:`Span` and the package façade in :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

from .metrics import TIME_BOUNDS_US, MetricsRegistry
from .timing import now

__all__ = ["Span", "Tracer"]


class Tracer:
    """Collects (name, start, end, depth) events relative to a process epoch."""

    __slots__ = ("_events", "_epoch", "_active", "_depth")

    def __init__(self) -> None:
        self._events: list[tuple[str, float, float, int]] = []
        self._epoch = now()
        self._active = False
        self._depth = 0

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        self._active = True

    def stop(self) -> None:
        self._active = False

    def clear(self) -> None:
        self._events.clear()
        self._epoch = now()
        self._depth = 0

    def record(self, name: str, t0: float, t1: float, depth: int) -> None:
        self._events.append((name, t0, t1, depth))

    def trace_events(self) -> list[dict]:
        """Chrome trace-event ``"X"`` (complete) events, ts/dur in µs."""
        pid = os.getpid()
        return [
            {
                "name": name,
                "ph": "X",
                "ts": (t0 - self._epoch) * 1e6,
                "dur": (t1 - t0) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {"depth": depth},
            }
            for name, t0, t1, depth in self._events
        ]

    def write(self, path: str | os.PathLike) -> int:
        """Write a Perfetto/chrome://tracing-loadable JSON file.

        Returns the number of events written.
        """
        events = self.trace_events()
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        Path(path).write_text(json.dumps(doc), encoding="utf-8")
        return len(events)


class Span:
    """Context manager measuring one region; see ``repro.obs.span``.

    ``seconds`` is always populated on exit.  The histogram observation
    (``<name>.us`` into *registry*) and the trace event (into *tracer*)
    happen only when the corresponding argument is non-None — the package
    façade passes None for whichever side is disabled.
    """

    __slots__ = ("name", "seconds", "_t0", "_registry", "_tracer", "_bounds")

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        bounds: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.seconds = 0.0
        self._t0 = 0.0
        self._registry = registry
        self._tracer = tracer
        self._bounds = bounds

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            tracer._depth += 1
        self._t0 = now()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        t1 = now()
        self.seconds = t1 - self._t0
        if self._registry is not None:
            self._registry.observe(
                self.name + ".us",
                self.seconds * 1e6,
                TIME_BOUNDS_US if self._bounds is None else self._bounds,
            )
        tracer = self._tracer
        if tracer is not None:
            depth = tracer._depth
            tracer._depth = depth - 1
            if tracer.active:
                tracer.record(self.name, self._t0, t1, depth)
