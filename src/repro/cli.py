"""Command-line interface: regenerate any experiment from the shell.

.. code-block:: bash

    python -m repro table1                 # Table 1 on default instances
    python -m repro figure1                # Figure 1 panels + ASCII scene
    python -m repro scaling --quick        # the n^{4/3} sweep with a plot
    python -m repro ksweep | epssweep      # the k and ε sweeps
    python -m repro rounds                 # distributed round counts
    python -m repro churn                  # incremental spanner maintenance
    python -m repro serve --tick 5         # routing tables under node/edge churn
    python -m repro serve --workers 4      # sharded: repairs fan out over a pool
    python -m repro distserve --transport uds  # actor tier over a real socket
    python -m repro traffic                # route-request soak between churn ticks
    python -m repro tune                   # calibrate traversal tuning knobs
    python -m repro demo --n 250 --seed 7  # one-off build + verify + stats

Each subcommand prints the same artifacts the benchmark suite records, so
a user can reproduce any number in ``EXPERIMENTS.md`` without pytest.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import render_table
from .analysis.plot import ascii_loglog, ascii_series

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for counts that must be ≥ 1 (worker pools, ticks).

    Rejects at parse time what used to die deep inside :class:`~repro.\
parallel.pool.WorkerPool` (negative counts) or silently fall through to
    the serial path (``--workers 0`` looked falsy to the truthiness
    checks below).
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer (≥ 1), got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Remote-spanners (Jacquet & Viennot, IPPS 2009) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--n-any", type=int, default=60)
    p.add_argument("--n-udg", type=int, default=250)
    p.add_argument("--seed", type=int, default=2009)

    sub.add_parser("figure1", help="regenerate Figure 1's four panels")

    p = sub.add_parser("scaling", help="n^{4/3} Poisson UDG sweep")
    p.add_argument("--quick", action="store_true", help="smaller sweep")
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("ksweep", help="k^{2/3} sweep")
    p.add_argument("--seed", type=int, default=2)

    p = sub.add_parser("epssweep", help="epsilon sweep (Theorem 1)")
    p.add_argument("--seed", type=int, default=3)

    p = sub.add_parser("rounds", help="distributed round counts (Algorithm 3)")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--seed", type=int, default=4)

    def add_churn_args(
        p,
        n_default: int,
        events_default: int,
        scenario_default: str = "all",
        check_every: bool = True,
    ) -> None:
        # Literal twin of repro.dynamic.SCENARIO_NAMES: importing the real
        # tuple here would pull numpy into every `repro --help` invocation
        # (tests assert the two stay in sync).
        scenarios = ("mobility", "failure", "growth", "nodechurn")
        p.add_argument(
            "--scenario",
            choices=(*scenarios, "all") if scenario_default == "all" else scenarios,
            default=scenario_default,
            help="event stream model"
            + (" (default: run every scenario)" if scenario_default == "all" else ""),
        )
        p.add_argument("--n", type=int, default=n_default)
        p.add_argument("--events", type=int, default=events_default)
        p.add_argument(
            "--method", choices=("kcover", "kmis", "mis", "greedy"), default="kcover"
        )
        p.add_argument(
            "--k",
            type=int,
            default=None,
            help="connectivity k: kcover needs k ≥ 1 (default 1), kmis needs k ≥ 2 (default 2)",
        )
        p.add_argument("--epsilon", type=float, default=None, help="ε for mis/greedy")
        p.add_argument("--rebuild-fraction", type=float, default=0.25)
        if check_every:
            p.add_argument(
                "--check-every",
                type=int,
                default=0,
                help="verify against a from-scratch build every N events (0: final state only)",
            )
        p.add_argument("--seed", type=int, default=2009)
        p.add_argument(
            "--workers",
            type=_positive_int,
            default=None,
            metavar="N",
            help="fan work out over N ≥ 1 worker processes (repro.parallel); "
            "omit the flag entirely for the single-process serial path",
        )
        p.add_argument(
            "--metrics",
            default=None,
            metavar="OUT.json",
            help="write the run's merged repro.obs metrics snapshot "
            "(per-shard breakdown included) to this JSON file",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="OUT.trace.json",
            help="record spans and write a Chrome trace-event file "
            "(open in https://ui.perfetto.dev or chrome://tracing)",
        )

    p = sub.add_parser(
        "churn", help="evolving-graph churn: incremental spanner maintenance"
    )
    add_churn_args(p, n_default=400, events_default=120)

    p = sub.add_parser(
        "serve",
        help="dynamic serving soak: incremental routing tables under churn",
    )
    add_churn_args(p, n_default=250, events_default=100)
    p.add_argument(
        "--tick",
        type=_positive_int,
        default=1,
        help="events per coalesced batch (1: apply singly)",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="check tables against a from-scratch build after every tick "
        "(the final state is always checked)",
    )

    p = sub.add_parser(
        "distserve",
        help="distributed serving soak: sharded table actors fed by "
        "sequence-numbered incremental LSA floods over a transport",
    )
    # Literal twin of repro.dynamic.SCENARIO_NAMES (same import-weight
    # rationale as add_churn_args above; tests pin the sync).
    dist_scenarios = ("mobility", "failure", "growth", "nodechurn")
    p.add_argument(
        "--scenario",
        choices=(*dist_scenarios, "all"),
        default="mobility",
        help="event stream model (default: mobility)",
    )
    p.add_argument("--n", type=int, default=120)
    p.add_argument("--events", type=int, default=48)
    p.add_argument(
        "--method", choices=("kcover", "kmis", "mis", "greedy"), default="kcover"
    )
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--epsilon", type=float, default=None)
    p.add_argument("--rebuild-fraction", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=2009)
    p.add_argument(
        "--shards",
        type=_positive_int,
        default=4,
        help="table actors in the tier (owner(u) = u mod shards)",
    )
    p.add_argument(
        "--transport",
        choices=("loop", "tcp", "uds"),
        default="loop",
        help="wire: deterministic in-process loopback, localhost TCP, "
        "or a Unix-domain socket",
    )
    p.add_argument(
        "--tick",
        type=_positive_int,
        default=6,
        help="events per coalesced batch (one LSA flood per tick)",
    )
    p.add_argument(
        "--queries",
        type=_positive_int,
        default=20,
        help="route queries forwarded across the actors at the end, each "
        "checked against the serial route_served journey",
    )
    p.add_argument("--metrics", default=None, metavar="OUT.json")
    p.add_argument("--trace", default=None, metavar="OUT.trace.json")

    p = sub.add_parser(
        "traffic",
        help="query-serving soak: route requests off the maintained tables "
        "between churn ticks",
    )
    add_churn_args(
        p, n_default=250, events_default=60, scenario_default="failure", check_every=False
    )
    # Literal twin of repro.dynamic.WORKLOAD_NAMES (same import-weight
    # rationale as the scenario list above; tests pin the sync).
    workloads = ("uniform", "zipf", "locality")
    p.add_argument(
        "--workload",
        choices=(*workloads, "all"),
        default="all",
        help="request model (default: run every workload)",
    )
    p.add_argument(
        "--tick",
        type=_positive_int,
        default=5,
        help="events coalesced between request batches",
    )
    p.add_argument(
        "--queries",
        type=_positive_int,
        default=40,
        help="route requests served after each tick",
    )
    p.add_argument(
        "--compare-bfs",
        type=int,
        default=25,
        metavar="PAIRS",
        help="also route PAIRS sampled requests with the per-hop-BFS "
        "reference on the final state and report the speedup (0: skip)",
    )

    p = sub.add_parser(
        "chaos",
        help="fault-injection soak: serve traffic under a named fault plan "
        "(worker crashes, wedges, torn writes) with self-healing shards, "
        "degraded reads and invariant verification",
    )
    # Literal twin of repro.faults.PLANS (same import-weight rationale as
    # the scenario list above; tests pin the sync).
    plans = (
        "quiet",
        "crashy",
        "torn-writer",
        "wedge",
        "lossy-queue",
        "flaky-shm",
        "mayhem",
        "lsa-lossy",
        "lsa-slow",
    )
    p.add_argument(
        "--plan",
        choices=plans,
        default="crashy",
        help="named fault plan from repro.faults.PLANS (default: crashy)",
    )
    # Literal twin of SCENARIO_NAMES + FAULT_SCENARIO_NAMES (tests pin it).
    chaos_scenarios = ("mobility", "failure", "growth", "nodechurn", "outage", "partition")
    p.add_argument(
        "--scenario",
        choices=chaos_scenarios,
        default="outage",
        help="churn model, fault scenarios included (default: outage)",
    )
    p.add_argument("--n", type=int, default=120)
    p.add_argument("--events", type=int, default=60)
    p.add_argument("--method", choices=("kcover", "kmis", "mis", "greedy"), default="kcover")
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--epsilon", type=float, default=None)
    p.add_argument("--rebuild-fraction", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=2009)
    p.add_argument("--workers", type=_positive_int, default=2)
    p.add_argument(
        "--workload",
        choices=("uniform", "zipf", "locality"),
        default="zipf",
        help="request model between churn ticks",
    )
    p.add_argument("--tick", type=_positive_int, default=5)
    p.add_argument("--queries", type=_positive_int, default=30)
    p.add_argument(
        "--max-staleness",
        type=int,
        default=None,
        metavar="K",
        help="reader refuses rows more than K committed generations stale "
        "(default: serve any committed state)",
    )
    p.add_argument(
        "--flash-crowd-at",
        type=int,
        nargs="*",
        default=None,
        metavar="TICK",
        help="permute the zipf hotspot ranking at these tick indices",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=5.0,
        help="seconds before unanswered shard tasks count as wedged",
    )
    p.add_argument("--metrics", default=None, metavar="OUT.json")
    p.add_argument("--trace", default=None, metavar="OUT.trace.json")

    p = sub.add_parser(
        "tune",
        help="measure traversal tuning crossovers on this hardware "
        "(repro.tuning: batch chunk, sets-vs-CSR threshold)",
    )
    p.add_argument("--n", type=int, default=1500, help="APSP calibration size")
    p.add_argument("--quick", action="store_true", help="smaller, faster sweep")
    p.add_argument("--seed", type=int, default=2009)

    p = sub.add_parser("demo", help="build + verify a spanner on one UDG")
    p.add_argument("--n", type=int, default=250)
    p.add_argument("--degree", type=float, default=12.0)
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser(
        "lint",
        help="run reprolint, the project-invariant AST checker "
        "(seqlock brackets, RNG discipline, shm lifecycle, ...)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src benchmarks scripts)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    p.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural pass (call graph + function "
        "summaries: RL008-RL011)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json carries suppressed findings, flagged)",
    )

    p = sub.add_parser(
        "obs",
        help="pretty-print a --metrics snapshot, or diff two of them",
    )
    p.add_argument("snapshot", metavar="METRICS.json", help="metrics file to display")
    p.add_argument(
        "baseline",
        nargs="?",
        metavar="BASELINE.json",
        help="older metrics file: print the delta (snapshot - baseline) instead",
    )
    return parser


def _cmd_table1(args) -> int:
    from .experiments import TABLE1_HEADERS, build_table1

    rows = build_table1(n_any=args.n_any, n_udg=args.n_udg, seed=args.seed)
    print(render_table(TABLE1_HEADERS, [r.as_list() for r in rows], title="Table 1 (measured)"))
    return 0 if all(r.stretch_ok in (True, "-") for r in rows) else 1


def _cmd_figure1(_args) -> int:
    from .experiments.figure1 import NAMES, ascii_scene, build_figure1, figure1_points

    fig = build_figure1()
    for label, graph in (
        ("(a) input UDG", fig.graph),
        ("(b) (1,0)-remote-spanner", fig.spanner_b.graph),
        ("(c) minimal (2,-1)-remote-spanner", fig.graph_c),
        ("(d) 2-connecting (2,-1)-remote-spanner", fig.spanner_d.graph),
    ):
        print(label)
        print(ascii_scene(figure1_points(), fig.graph, None if graph is fig.graph else graph))
        print()
    u, x, d = fig.exact_pair
    s, t, dg, dh = fig.stretch_pair
    print(f"(b) witness: d_Hb_{NAMES[u]}({NAMES[u]},{NAMES[x]}) = {d} = d_G")
    print(f"(c) witness: d_Hc_{NAMES[s]}({NAMES[s]},{NAMES[t]}) = {dh} = 2*{dg}-1")
    return 0


def _cmd_scaling(args) -> int:
    from .experiments import udg_edge_scaling

    intensities = (15.0, 30.0, 60.0) if args.quick else (15.0, 30.0, 60.0, 120.0)
    res = udg_edge_scaling(intensities=intensities, side=3.0, trials=2, seed=args.seed)
    ns = [r.values["n"] for r in res.rows]
    print(
        render_table(
            ["mean n", "full edges", "spanner edges"],
            [
                [round(r.values["n"], 1), round(r.values["full_edges"], 1), round(r.values["spanner_edges"], 1)]
                for r in res.rows
            ],
            title="E-Th2-udg — Poisson UDG, fixed square",
        )
    )
    print()
    print(
        ascii_loglog(
            ns,
            [r.values["spanner_edges"] for r in res.rows],
            ref_slope=4 / 3,
            title=f"spanner edges vs n (fit n^{res.exponent('spanner_edges'):.2f}, paper 4/3)",
        )
    )
    print()
    print(
        ascii_loglog(
            ns,
            [r.values["full_edges"] for r in res.rows],
            ref_slope=2.0,
            title=f"full edges vs n (fit n^{res.exponent('full_edges'):.2f}, paper 2)",
        )
    )
    return 0


def _cmd_ksweep(args) -> int:
    from .experiments import k_sweep

    res = k_sweep(ks=(1, 2, 3, 4, 6), intensity=60.0, side=3.0, trials=2, seed=args.seed)
    xs = [r.x for r in res.rows]
    ys = [r.values["spanner_edges"] for r in res.rows]
    print(
        ascii_loglog(
            xs,
            ys,
            ref_slope=2 / 3,
            title=f"spanner edges vs k (fit k^{res.exponent('spanner_edges'):.2f}, paper 2/3)",
        )
    )
    return 0


def _cmd_epssweep(args) -> int:
    from .experiments import eps_sweep

    res = eps_sweep(epsilons=(1.0, 0.5, 1 / 3, 0.25), n=300, trials=2, seed=args.seed)
    xs = [r.x for r in res.rows]
    ys = [r.values["edges_per_n"] for r in res.rows]
    print(
        ascii_series(
            xs, ys, title="edges per node vs epsilon ((1+eps,1-2eps)-remote-spanner)"
        )
    )
    print(f"fitted exponent (1/eps)^{res.exponent('edges_per_n'):.2f} (paper bound: 3)")
    return 0


def _cmd_rounds(args) -> int:
    from .distributed import run_remspan
    from .graph.generators import random_connected_gnp

    g = random_connected_gnp(args.n, 3.0 / args.n, seed=args.seed)
    rows = []
    for kind, kwargs in (
        ("kcover", dict(k=1)),
        ("kcover", dict(k=2)),
        ("greedy", dict(r=3, beta=1)),
        ("mis", dict(r=3)),
        ("kmis", dict(k=2)),
    ):
        res = run_remspan(g, kind, **kwargs)
        rows.append(
            [
                f"{kind}{kwargs}",
                res.communication_rounds,
                res.expected_rounds,
                res.spanner.num_edges,
            ]
        )
    print(
        render_table(
            ["construction", "rounds", "expected (2r-1+2b)", "spanner edges"],
            rows,
            title=f"RemSpan on G(n={args.n}); round counts are graph-independent",
        )
    )
    return 0 if all(r[1] == r[2] for r in rows) else 1


def _obs_begin(args) -> None:
    """Arm the tracer when the run asked for a trace file."""
    if getattr(args, "trace", None):
        from . import obs

        obs.tracer().start()


def _obs_finish(args, shards: "dict[int, dict] | None" = None) -> None:
    """Write the --metrics / --trace artifacts a soak asked for."""
    import json

    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    if not metrics_path and not trace_path:
        return
    from . import obs

    if metrics_path:
        doc = obs.metrics_document(shards)
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        print(f"metrics snapshot ({doc['schema']}) written to {metrics_path}")
    if trace_path:
        count = obs.tracer().write(trace_path)
        print(
            f"trace with {count} events written to {trace_path} "
            "(open in https://ui.perfetto.dev)"
        )


def _load_snapshot(path: str) -> "tuple[dict, dict]":
    """A metrics file's (document, merged-snapshot) pair.

    Accepts both the full ``--metrics`` document and a bare snapshot.
    """
    import json

    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    return doc, doc.get("merged", doc)


def _cmd_obs(args) -> int:
    from . import obs

    doc, snap = _load_snapshot(args.snapshot)
    if args.baseline:
        _, base = _load_snapshot(args.baseline)
        print(f"delta: {args.baseline} -> {args.snapshot}")
        print(obs.format_diff(base, snap))
        return 0
    print(obs.format_snapshot(snap))
    shards = doc.get("shards") or {}
    for wid in sorted(shards, key=int):
        shard = shards[wid]
        counters = shard.get("counters", {})
        total = sum(counters.values())
        print(
            f"shard {wid}: {len(counters)} counters (sum {total:,.0f}), "
            f"{len(shard.get('histograms', {}))} histograms"
        )
    return 0


def _cmd_churn(args) -> int:
    from . import obs
    from .dynamic import SCENARIO_NAMES, SpannerMaintainer, make_scenario
    from .graph import Graph

    _obs_begin(args)
    pool = None
    if args.workers:
        from .parallel import WorkerPool

        pool = WorkerPool(args.workers)

    def matches_rebuild(maintainer) -> bool:
        # With --workers the from-scratch reference spanner is assembled by
        # the pool: workers build the per-root trees on a shared CSR of the
        # live graph, the parent unions the edges (parallel construction).
        if pool is None:
            return maintainer.spanner.graph == maintainer.rebuilt_from_scratch().graph
        from .parallel import parallel_tree_edges

        trees = parallel_tree_edges(
            maintainer.graph,
            args.method,
            dict(k=args.k, epsilon=args.epsilon),
            pool,
        )
        union = Graph(
            maintainer.graph.num_nodes, (e for edges in trees.values() for e in edges)
        )
        return union == maintainer.spanner.graph

    names = SCENARIO_NAMES if args.scenario == "all" else (args.scenario,)
    rows = []
    all_ok = True
    for name in names:
        scenario = make_scenario(name, args.n, args.events, seed=args.seed)
        maintainer = SpannerMaintainer(
            scenario.initial,
            args.method,
            k=args.k,
            epsilon=args.epsilon,
            rebuild_fraction=args.rebuild_fraction,
        )
        ok = True
        checked_final = False
        sw = obs.Stopwatch()
        reports = []
        for i, event in enumerate(scenario.events, start=1):
            reports.append(maintainer.apply(event))
            if args.check_every and i % args.check_every == 0:
                ok = ok and matches_rebuild(maintainer)
                checked_final = i == scenario.num_events
        elapsed = sw.elapsed()
        if not checked_final:  # final state always verified, but only once
            ok = ok and matches_rebuild(maintainer)
        all_ok = all_ok and ok
        dirty = [r.dirty for r in reports if r.changed]
        rows.append(
            [
                name,
                len(reports),
                maintainer.incremental_repairs,
                maintainer.full_rebuilds,
                round(sum(dirty) / len(dirty), 1) if dirty else 0.0,
                round(elapsed * 1e3 / max(len(reports), 1), 2),
                maintainer.spanner.num_edges,
                ok,
            ]
        )
    print(
        render_table(
            [
                "scenario",
                "events",
                "incremental",
                "rebuilds",
                "mean dirty ball",
                "ms/event",
                "spanner edges",
                "matches rebuild",
            ],
            rows,
            title=(
                f"churn — {args.method} maintenance, n={args.n}, "
                f"{args.events} events, seed {args.seed}"
                + (f", verified on {args.workers} workers" if args.workers else "")
            ),
        )
    )
    shards = None
    if pool is not None:
        shards = pool.metrics()["shards"]
        pool.close()
    _obs_finish(args, shards)
    return 0 if all_ok else 1


def _cmd_serve(args) -> int:
    from . import obs
    from .dynamic import RoutingService, SCENARIO_NAMES, make_scenario
    from .graph import distance_cache_info, sample_pairs
    from .rng import derive_seed
    from .routing import route_all_pairs_stats, routing_table

    _obs_begin(args)
    names = SCENARIO_NAMES if args.scenario == "all" else (args.scenario,)
    rows = []
    all_ok = True
    cache_lines = []
    shard_acc: "dict[int, dict]" = {}
    for name in names:
        scenario = make_scenario(name, args.n, args.events, seed=args.seed)
        if args.workers:
            from .parallel import ShardedRoutingService

            service = ShardedRoutingService(
                scenario.initial,
                args.method,
                workers=args.workers,
                k=args.k,
                epsilon=args.epsilon,
                rebuild_fraction=args.rebuild_fraction,
            )
        else:
            service = RoutingService(
                scenario.initial,
                args.method,
                k=args.k,
                epsilon=args.epsilon,
                rebuild_fraction=args.rebuild_fraction,
            )

        def tables_match() -> bool:
            h, g = service.advertised, service.graph
            return all(service.table(u) == routing_table(h, g, u) for u in g.nodes())

        ok = True
        events = list(scenario.events)
        cadence = 1 if args.verify else args.check_every
        if cadence:
            reports = []
            applied = 0
            for lo in range(0, len(events), args.tick):
                tick = events[lo : lo + args.tick]
                reports.extend(service.apply_stream(tick, tick=args.tick))
                prev, applied = applied, applied + len(tick)
                # Verify whenever the tick crossed a check-every boundary
                # (ticks need not divide the cadence evenly).
                if prev // cadence < applied // cadence:
                    ok = ok and tables_match()
        else:
            reports = service.apply_stream(events, tick=args.tick)
        # Serving cost only — the interleaved tables_match() verification
        # rebuilds every table from scratch and would swamp ms/event.
        elapsed = sum(r.seconds for r in reports)
        # Full wall clock per tick (span-measured): includes freeze and
        # shared-memory/directory publish time that `seconds` excludes.
        wall = sum(r.wall_seconds for r in reports)
        ok = ok and tables_match()  # final state always verified
        all_ok = all_ok and ok
        ticks = max(len(reports), 1)
        mem = service.memory_stats()
        # Route a sample of live traffic over the final (H, G): exercises
        # the greedy forwarding path end-to-end, and its G-distance probes
        # (plus sample_pairs' connectivity checks) run through the BFS
        # distance cache whose counters are surfaced below.
        pairs = sample_pairs(
            service.graph,
            60,
            seed=derive_seed(args.seed, "serve-sample", name),
            require_nonadjacent=False,
        )
        routed = route_all_pairs_stats(service.advertised, service.graph, pairs=pairs)
        cache = distance_cache_info(service.graph)
        cache_lines.append(
            f"  {name}: routed {routed.delivered}/{routed.pairs} sampled pairs "
            f"(max stretch {routed.max_stretch:.2f}); distance cache "
            f"{cache.entries}/{cache.capacity} entries, {cache.hits} hits / "
            f"{cache.misses} misses / {cache.evictions} evictions; "
            f"apply {elapsed * 1e3:.1f} ms / wall {wall * 1e3:.1f} ms"
        )
        rows.append(
            [
                name,
                len(events),
                round(service.rows_recomputed / ticks, 1),
                round(service.tables_recomputed / ticks, 1),
                service.entries_updated,
                service.full_refreshes,
                round(elapsed * 1e3 / max(len(events), 1), 2),
                round(mem.total_bytes / 1e6, 2),
                mem.dormant,
                ok,
            ]
        )
        if args.workers:
            for wid, snap in service.metrics()["shards"].items():
                have = shard_acc.get(wid)
                shard_acc[wid] = snap if have is None else obs.merge_snapshots(have, snap)
            service.close()
    print(
        render_table(
            [
                "scenario",
                "events",
                "rows/tick",
                "tables/tick",
                "entries upd",
                "refreshes",
                "ms/event",
                "matrix MB",
                "dormant ids",
                "matches scratch",
            ],
            rows,
            title=(
                f"serve — incremental routing tables over {args.method} maintenance, "
                f"n={args.n}, {args.events} events, tick {args.tick}, seed {args.seed}"
                + (f", {args.workers} workers" if args.workers else "")
            ),
        )
    )
    print("\n".join(cache_lines))
    _obs_finish(args, shard_acc if args.workers else None)
    return 0 if all_ok else 1


def _cmd_distserve(args) -> int:
    from .distributed import ActorSystem, make_transport
    from .dynamic import SCENARIO_NAMES, make_scenario
    from .graph import sample_pairs
    from .rng import derive_seed
    from .routing import route_actor, route_served

    _obs_begin(args)
    names = SCENARIO_NAMES if args.scenario == "all" else (args.scenario,)
    rows = []
    all_ok = True
    for name in names:
        scenario = make_scenario(name, args.n, args.events, seed=args.seed)
        system = ActorSystem(
            scenario.initial.copy(),
            args.method,
            k=args.k,
            epsilon=args.epsilon,
            rebuild_fraction=args.rebuild_fraction,
            shards=args.shards,
            transport=make_transport(args.transport),
        )
        with system:
            events = list(scenario.events)
            for lo in range(0, len(events), args.tick):
                system.apply_tick(events[lo : lo + args.tick])
            mismatches = system.mismatches()
            converged = not mismatches
            pairs = sample_pairs(
                system.service.graph,
                args.queries,
                seed=derive_seed(args.seed, "distserve-sample", name),
                require_nonadjacent=False,
            )
            routes_ok = True
            for s, t in pairs:
                actor_res = route_actor(system, s, t)
                serial_res = route_served(system.service, s, t)
                routes_ok = routes_ok and (
                    actor_res.path == serial_res.path
                    and actor_res.delivered == serial_res.delivered
                    and actor_res.potentials == serial_res.potentials
                )
            wire = system.stats
            ok = converged and routes_ok
            all_ok = all_ok and ok
            rows.append(
                [
                    name,
                    len(events),
                    wire.rounds,
                    wire.messages,
                    wire.bytes,
                    wire.links,
                    sum(a.recomputes for a in system.actors),
                    converged,
                    f"{len(pairs)}/{len(pairs)}" if routes_ok else "MISMATCH",
                ]
            )
            if mismatches:
                for line in mismatches[:5]:
                    print(f"  divergence: {line}")
    print(
        render_table(
            [
                "scenario",
                "events",
                "rounds",
                "messages",
                "bytes",
                "links",
                "recomputes",
                "converged",
                "routes match",
            ],
            rows,
            title=(
                f"distserve — {args.shards} actors over {args.transport} transport, "
                f"{args.method} maintenance, n={args.n}, {args.events} events, "
                f"tick {args.tick}, seed {args.seed}"
            ),
        )
    )
    _obs_finish(args)
    return 0 if all_ok else 1


def _cmd_traffic(args) -> int:
    from . import obs
    from .dynamic import (
        RoutingService,
        WORKLOAD_NAMES,
        make_scenario,
        make_workload,
        serve_queries,
    )
    from .routing import route, route_served
    from .rng import derive_seed, ensure_rng

    _obs_begin(args)
    kinds = WORKLOAD_NAMES if args.workload == "all" else (args.workload,)
    scenario = make_scenario(args.scenario, args.n, args.events, seed=args.seed)
    rows = []
    all_ok = True
    shard_acc: "dict[int, dict]" = {}
    for kind in kinds:
        workload = make_workload(
            kind, scenario, queries_per_tick=args.queries, tick=args.tick, seed=args.seed
        )
        if args.workers:
            from .parallel import RouteReader, ShardedRoutingService

            service = ShardedRoutingService(
                scenario.initial,
                args.method,
                workers=args.workers,
                k=args.k,
                epsilon=args.epsilon,
                rebuild_fraction=args.rebuild_fraction,
            )
            # Queries ride the concurrent read path: a RouteReader over the
            # shared matrices, exactly what a detached frontend would hold.
            endpoint = RouteReader(service.reader_handle())
        else:
            service = RoutingService(
                scenario.initial,
                args.method,
                k=args.k,
                epsilon=args.epsilon,
                rebuild_fraction=args.rebuild_fraction,
            )
            endpoint = service
        served = delivered = 0
        hops_total = 0
        t_repair = t_serve = 0.0
        for tick in workload.ticks:
            if tick.events:
                with obs.span("traffic.repair") as sp:
                    service.apply_batch(tick.events)
                t_repair += sp.seconds
            batch = serve_queries(endpoint, tick.queries)
            served += batch.served
            delivered += batch.delivered
            hops_total += batch.hops_total
            t_serve += batch.seconds
        # Per-hop-BFS reference on the final state: correctness spot-check
        # (served journeys must be identical) + the speedup column.
        ok = True
        bfs_qps = speedup = None
        if args.compare_bfs > 0:
            h, g = service.advertised, service.graph
            rng = ensure_rng(derive_seed(args.seed, "traffic-compare", kind))
            sample = list(workload.ticks[-1].queries)
            extra = [q for tick in workload.ticks for q in tick.queries]
            while len(sample) < args.compare_bfs and extra:
                sample.append(extra[int(rng.integers(len(extra)))])
            sample = sample[: args.compare_bfs]
            sw = obs.Stopwatch()
            reference = [route(h, g, s, t) for s, t in sample]
            t_bfs = sw.elapsed()
            for (s, t), ref in zip(sample, reference):
                res = route_served(endpoint, s, t)
                ok = ok and res.path == ref.path and res.delivered == ref.delivered
            bfs_qps = len(sample) / t_bfs if t_bfs > 0 else float("inf")
            serve_qps_now = served / t_serve if t_serve > 0 else float("inf")
            speedup = serve_qps_now / bfs_qps if bfs_qps else None
        all_ok = all_ok and ok
        rows.append(
            [
                kind,
                len(workload.ticks),
                served,
                f"{100 * delivered / max(served, 1):.0f}%",
                round(hops_total / max(delivered, 1), 2),
                round(served / t_serve, 0) if t_serve > 0 else "-",
                round(t_repair * 1e3 / max(workload.num_events, 1), 2),
                round(bfs_qps, 1) if bfs_qps is not None else "-",
                round(speedup, 1) if speedup is not None else "-",
                ok,
            ]
        )
        if args.workers:
            for wid, snap in service.metrics()["shards"].items():
                have = shard_acc.get(wid)
                shard_acc[wid] = snap if have is None else obs.merge_snapshots(have, snap)
            endpoint.close()
            service.close()
    print(
        render_table(
            [
                "workload",
                "ticks",
                "queries",
                "delivered",
                "mean hops",
                "serve q/s",
                "repair ms/ev",
                "bfs q/s",
                "speedup",
                "matches route",
            ],
            rows,
            title=(
                f"traffic — served route queries over {args.method} maintenance, "
                f"{args.scenario} scenario, n={args.n}, {args.events} events, "
                f"tick {args.tick}, seed {args.seed}"
                + (f", {args.workers} workers" if args.workers else "")
            ),
        )
    )
    _obs_finish(args, shard_acc if args.workers else None)
    return 0 if all_ok else 1


def _cmd_chaos(args) -> int:
    import os

    from . import faults, obs
    from .dynamic import apply_events, make_scenario, make_workload
    from .parallel import RouteReader, ShardedRoutingService, WorkerError
    from .routing import route_served

    _obs_begin(args)
    plan = faults.PLANS[args.plan]
    scenario = make_scenario(args.scenario, args.n, args.events, seed=args.seed)
    flash = tuple(args.flash_crowd_at) if args.flash_crowd_at else None
    workload = make_workload(
        args.workload,
        scenario,
        queries_per_tick=args.queries,
        tick=args.tick,
        seed=args.seed,
        flash_crowd_at=flash,
    )
    # Arm through the environment — the sanctioned entry point: fork
    # workers inherit the installed plan, spawn workers re-read the
    # variables at repro.parallel import time.
    saved = {var: os.environ.get(var) for var in (faults.ENV_GATE, faults.ENV_PLAN)}
    faults.arm_env(plan)
    faults.maybe_install_from_env()
    served = delivered = fallback_used = invalid_hops = 0
    degraded_ticks = 0
    errors: "list[str]" = []
    reconverged = False
    healthy = True
    try:
        service = None
        for attempt in range(4):
            if attempt:
                # The initial build runs under fire too.  Fault streams are
                # seeded from the *plan* seed per (worker, incarnation), so
                # a retry under the same plan would replay the identical
                # crash pattern — re-arm with an offset seed to re-roll.
                faults.uninstall()
                faults.arm_env(faults.FaultPlan(plan.name, plan.seed + attempt, plan.rules))
                faults.maybe_install_from_env()
            try:
                service = ShardedRoutingService(
                    scenario.initial,
                    args.method,
                    workers=args.workers,
                    seed=args.seed,
                    task_timeout=args.task_timeout,
                    k=args.k,
                    epsilon=args.epsilon,
                    rebuild_fraction=args.rebuild_fraction,
                )
                break
            except (WorkerError, OSError) as exc:
                errors.append(f"build attempt {attempt + 1}: {type(exc).__name__}: {exc}")
                obs.inc("chaos.build_retries")
        if service is None:
            print("chaos: service construction failed under injected faults:")
            for line in errors:
                print(f"  {line}")
            return 1
        endpoint = RouteReader(service.reader_handle(), max_staleness=args.max_staleness)

        def heal() -> bool:
            # Under sustained fault pressure a full resync can itself lose
            # workers (every attempt re-rolls the injected dice, and the
            # pool's respawn/poison budgets reset per run) — retry before
            # declaring the soak unhealable.
            for _ in range(4):
                try:
                    service.refresh()
                    return True
                except (WorkerError, OSError) as exc:
                    errors.append(f"heal: {type(exc).__name__}: {exc}")
                    obs.inc("chaos.heal_retries")
            return False

        def fallback(u: int, v: int) -> "int | None":
            nonlocal fallback_used
            hop = endpoint.hop_fallback(u, v)
            if hop is not None:
                fallback_used += 1
            return hop

        # Mirror of the service's topology, for journey validation: every
        # hop a query takes must be an edge of a state the service passed
        # through (the graph before or after the tick's coalesced repair).
        g_run = scenario.initial.copy()
        valid_edges = g_run.edge_set()
        with obs.span("chaos.soak"):
            from .errors import NodeNotFound

            for tick_ in workload.ticks:
                prev_edges = g_run.edge_set()
                degraded = False
                if tick_.events:
                    apply_events(g_run, tick_.events)
                    try:
                        with obs.span("chaos.repair"):
                            service.apply_batch(tick_.events)
                    except (WorkerError, OSError) as exc:
                        # Shards lost beyond the supervisor's budget (or an
                        # injected shm failure): the tick's queries are
                        # served *degraded* — off whatever mix of committed
                        # rows survived, stale refusals and per-hop
                        # fallbacks included — then a full resync heals.
                        degraded = True
                        degraded_ticks += 1
                        errors.append(f"repair: {type(exc).__name__}: {exc}")
                        obs.inc("chaos.degraded_ticks")
                valid_edges = prev_edges | g_run.edge_set()
                for s, t in tick_.queries:
                    try:
                        res = route_served(endpoint, s, t, hop_fallback=fallback)
                    except NodeNotFound:
                        # A joiner the degraded directory never admitted.
                        served += 1
                        continue
                    served += 1
                    delivered += res.delivered
                    for a, b in zip(res.path, res.path[1:]):
                        if (a, b) not in valid_edges and (b, a) not in valid_edges:
                            invalid_hops += 1
                if degraded and not heal():
                    healthy = False
                    break
        # Quiescent now: the survived state must be bit-identical to a
        # serial twin that never saw a fault.
        if healthy:
            import numpy as np

            from .dynamic import RoutingService

            twin = RoutingService(
                scenario.initial,
                args.method,
                k=args.k,
                epsilon=args.epsilon,
                rebuild_fraction=args.rebuild_fraction,
            )
            for tick_ in workload.ticks:
                if tick_.events:
                    twin.apply_batch(tick_.events)
            reconverged = np.array_equal(
                np.asarray(service._dist), np.asarray(twin._dist)
            ) and np.array_equal(np.asarray(service._tables), np.asarray(twin._tables))
        health = service.pool_health.as_dict()
        endpoint.close()
        service.close()
    finally:
        faults.uninstall()
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
    print(
        render_table(
            ["ticks", "queries", "delivered", "fallback hops", "degraded ticks", "invalid hops", "reconverged"],
            [
                [
                    len(workload.ticks),
                    served,
                    f"{100 * delivered / max(served, 1):.0f}%",
                    fallback_used,
                    degraded_ticks,
                    invalid_hops,
                    reconverged,
                ]
            ],
            title=(
                f"chaos — plan {plan.name!r} over {args.scenario} churn, "
                f"{args.workload} traffic, n={args.n}, {args.events} events, "
                f"{args.workers} workers, seed {args.seed}"
                + (f", max_staleness={args.max_staleness}" if args.max_staleness is not None else "")
            ),
        )
    )
    print(
        render_table(
            ["respawns", "task retries", "wedge restarts", "quarantined", "torn rows repaired", "backoff s"],
            [
                [
                    health["respawns"],
                    health["retries"],
                    health["wedge_restarts"],
                    health["quarantined"],
                    health["torn_rows_repaired"],
                    health["backoff_seconds"],
                ]
            ],
            title="self-healing (pool supervision)",
        )
    )
    if errors:
        print("faults survived (healed by retry / full resync):")
        for line in errors:
            print(f"  {line}")
    if not healthy:
        print("chaos: soak aborted — a degraded tick could not be healed")
    _obs_finish(args)
    ok = healthy and reconverged and invalid_hops == 0 and served > 0
    return 0 if ok else 1


def _cmd_tune(args) -> int:
    from . import tuning

    result = tuning.calibrate(n=args.n, seed=args.seed, quick=args.quick)
    cross = result["auto_min_nodes"]
    print(
        render_table(
            ["n", "sets ms", "csr ms"],
            [
                [r["n"], round(r["sets_s"] * 1e3, 3), round(r["csr_s"] * 1e3, 3)]
                for r in cross["rows"]
            ],
            title="sets vs CSR backend — one BFS per 4th node",
        )
    )
    print()
    chunk = result["batch_chunk"]
    print(
        render_table(
            ["chunk", "APSP s"],
            [[r["chunk"], round(r["apsp_s"], 3)] for r in chunk["rows"]],
            title=f"batched_bfs chunk sweep — full APSP at n={chunk['n']}",
        )
    )
    active = result["active"]
    print()
    print(
        f"recommended: auto_min_nodes={cross['recommended']} "
        f"(active {active.auto_min_nodes}), batch_chunk={chunk['recommended']} "
        f"(active {active.batch_chunk})"
    )
    print("apply with:")
    print(f"  export REPRO_AUTO_MIN_NODES={cross['recommended']}")
    print(f"  export REPRO_BATCH_CHUNK={chunk['recommended']}")
    print("or repro.tuning.configure(batch_chunk=..., auto_min_nodes=...)")
    return 0


def _cmd_demo(args) -> int:
    from .core import (
        build_k_connecting_spanner,
        build_remote_spanner,
        is_remote_spanner,
        remote_stretch_stats,
    )
    from .experiments import largest_component, scaled_udg
    from .routing import full_link_state_cost, spanner_advertisement_cost

    g_full, _pts = scaled_udg(args.n, args.degree, seed=args.seed)
    g, _ids = largest_component(g_full)
    print(f"UDG: n={g.num_nodes} m={g.num_edges} max_deg={g.max_degree()}")
    # --epsilon < 1 selects the Theorem-1 builder; otherwise Theorem 2's
    # k-connecting exact-distance construction.
    if args.epsilon < 1.0:
        rs = build_remote_spanner(g, epsilon=args.epsilon)
    else:
        rs = build_k_connecting_spanner(g, k=args.k)
    ok = is_remote_spanner(rs.graph, g, rs.guarantee.alpha, rs.guarantee.beta)
    stats = remote_stretch_stats(rs.graph, g)
    ours = spanner_advertisement_cost(rs)
    ospf = full_link_state_cost(g)
    print(f"spanner: {rs.num_edges} edges ({rs.method}), guarantee {rs.guarantee}")
    print(f"verified: {ok}; max measured stretch {stats.max_ratio:.3f}")
    print(
        f"advertisement: {ours.entries_per_period} entries/period "
        f"({100 * ours.ratio_to(ospf):.0f}% of full link state)"
    )
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    import json as _json
    import os

    from .analysis.deep import deep_lint_paths, default_deep_rules
    from .analysis.lint import default_rules, lint_paths
    from .errors import ParameterError

    rules = default_rules()
    deep_rules = default_deep_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code} {rule.name}: {rule.description}")
        for rule in deep_rules:
            print(f"{rule.code} {rule.name} [deep]: {rule.description}")
        return 0
    paths = args.paths or [p for p in ("src", "benchmarks", "scripts") if os.path.isdir(p)]
    if not paths:
        print("repro lint: no paths given and none of src/benchmarks/scripts exist here")
        return 2
    as_json = args.format == "json"
    try:
        findings = lint_paths(paths, rules, keep_suppressed=as_json)
        if args.deep:
            findings = sorted(
                findings + deep_lint_paths(paths, deep_rules, keep_suppressed=as_json)
            )
    except ParameterError as exc:
        print(f"repro lint: {exc}")
        return 2
    unsuppressed = [f for f in findings if not f.suppressed]
    if as_json:
        print(
            _json.dumps(
                {
                    "schema": "reprolint/1",
                    "deep": bool(args.deep),
                    "paths": [str(p) for p in paths],
                    "findings": [
                        {
                            "rule": f.rule,
                            "path": f.path,
                            "line": f.line,
                            "col": f.col,
                            "message": f.message,
                            "suppressed": f.suppressed,
                        }
                        for f in findings
                    ],
                    "summary": {
                        "findings": len(unsuppressed),
                        "suppressed": len(findings) - len(unsuppressed),
                    },
                },
                indent=2,
            )
        )
        return 1 if unsuppressed else 0
    for finding in unsuppressed:
        print(finding.format())
    n_rules = len(rules) + (len(deep_rules) if args.deep else 0)
    if unsuppressed:
        print(
            f"repro lint: {len(unsuppressed)} finding(s) in {', '.join(map(str, paths))}"
        )
        return 1
    print(f"repro lint: clean ({', '.join(map(str, paths))}; {n_rules} rules)")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "figure1": _cmd_figure1,
    "scaling": _cmd_scaling,
    "ksweep": _cmd_ksweep,
    "epssweep": _cmd_epssweep,
    "rounds": _cmd_rounds,
    "churn": _cmd_churn,
    "serve": _cmd_serve,
    "distserve": _cmd_distserve,
    "traffic": _cmd_traffic,
    "chaos": _cmd_chaos,
    "tune": _cmd_tune,
    "demo": _cmd_demo,
    "lint": _cmd_lint,
    "obs": _cmd_obs,
}


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
