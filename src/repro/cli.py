"""Command-line interface: regenerate any experiment from the shell.

.. code-block:: bash

    python -m repro table1                 # Table 1 on default instances
    python -m repro figure1                # Figure 1 panels + ASCII scene
    python -m repro scaling --quick        # the n^{4/3} sweep with a plot
    python -m repro ksweep | epssweep      # the k and ε sweeps
    python -m repro rounds                 # distributed round counts
    python -m repro churn                  # incremental spanner maintenance
    python -m repro serve --tick 5         # routing tables under node/edge churn
    python -m repro serve --workers 4      # sharded: repairs fan out over a pool
    python -m repro tune                   # calibrate traversal tuning knobs
    python -m repro demo --n 250 --seed 7  # one-off build + verify + stats

Each subcommand prints the same artifacts the benchmark suite records, so
a user can reproduce any number in ``EXPERIMENTS.md`` without pytest.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import render_table
from .analysis.plot import ascii_loglog, ascii_series

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Remote-spanners (Jacquet & Viennot, IPPS 2009) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--n-any", type=int, default=60)
    p.add_argument("--n-udg", type=int, default=250)
    p.add_argument("--seed", type=int, default=2009)

    sub.add_parser("figure1", help="regenerate Figure 1's four panels")

    p = sub.add_parser("scaling", help="n^{4/3} Poisson UDG sweep")
    p.add_argument("--quick", action="store_true", help="smaller sweep")
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("ksweep", help="k^{2/3} sweep")
    p.add_argument("--seed", type=int, default=2)

    p = sub.add_parser("epssweep", help="epsilon sweep (Theorem 1)")
    p.add_argument("--seed", type=int, default=3)

    p = sub.add_parser("rounds", help="distributed round counts (Algorithm 3)")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--seed", type=int, default=4)

    def add_churn_args(p, n_default: int, events_default: int) -> None:
        # Literal twin of repro.dynamic.SCENARIO_NAMES: importing the real
        # tuple here would pull numpy into every `repro --help` invocation
        # (tests assert the two stay in sync).
        scenarios = ("mobility", "failure", "growth", "nodechurn")
        p.add_argument(
            "--scenario",
            choices=(*scenarios, "all"),
            default="all",
            help="event stream model (default: run every scenario)",
        )
        p.add_argument("--n", type=int, default=n_default)
        p.add_argument("--events", type=int, default=events_default)
        p.add_argument(
            "--method", choices=("kcover", "kmis", "mis", "greedy"), default="kcover"
        )
        p.add_argument(
            "--k",
            type=int,
            default=None,
            help="connectivity k: kcover needs k ≥ 1 (default 1), kmis needs k ≥ 2 (default 2)",
        )
        p.add_argument("--epsilon", type=float, default=None, help="ε for mis/greedy")
        p.add_argument("--rebuild-fraction", type=float, default=0.25)
        p.add_argument(
            "--check-every",
            type=int,
            default=0,
            help="verify against a from-scratch build every N events (0: final state only)",
        )
        p.add_argument("--seed", type=int, default=2009)
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="fan work out over N worker processes (repro.parallel); "
            "default: single-process",
        )

    p = sub.add_parser(
        "churn", help="evolving-graph churn: incremental spanner maintenance"
    )
    add_churn_args(p, n_default=400, events_default=120)

    p = sub.add_parser(
        "serve",
        help="dynamic serving soak: incremental routing tables under churn",
    )
    add_churn_args(p, n_default=250, events_default=100)
    p.add_argument(
        "--tick",
        type=int,
        default=1,
        help="events per coalesced batch (1: apply singly)",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="check tables against a from-scratch build after every tick "
        "(the final state is always checked)",
    )

    p = sub.add_parser(
        "tune",
        help="measure traversal tuning crossovers on this hardware "
        "(repro.tuning: batch chunk, sets-vs-CSR threshold)",
    )
    p.add_argument("--n", type=int, default=1500, help="APSP calibration size")
    p.add_argument("--quick", action="store_true", help="smaller, faster sweep")
    p.add_argument("--seed", type=int, default=2009)

    p = sub.add_parser("demo", help="build + verify a spanner on one UDG")
    p.add_argument("--n", type=int, default=250)
    p.add_argument("--degree", type=float, default=12.0)
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--seed", type=int, default=42)
    return parser


def _cmd_table1(args) -> int:
    from .experiments import TABLE1_HEADERS, build_table1

    rows = build_table1(n_any=args.n_any, n_udg=args.n_udg, seed=args.seed)
    print(render_table(TABLE1_HEADERS, [r.as_list() for r in rows], title="Table 1 (measured)"))
    return 0 if all(r.stretch_ok in (True, "-") for r in rows) else 1


def _cmd_figure1(_args) -> int:
    from .experiments.figure1 import NAMES, ascii_scene, build_figure1, figure1_points

    fig = build_figure1()
    for label, graph in (
        ("(a) input UDG", fig.graph),
        ("(b) (1,0)-remote-spanner", fig.spanner_b.graph),
        ("(c) minimal (2,-1)-remote-spanner", fig.graph_c),
        ("(d) 2-connecting (2,-1)-remote-spanner", fig.spanner_d.graph),
    ):
        print(label)
        print(ascii_scene(figure1_points(), fig.graph, None if graph is fig.graph else graph))
        print()
    u, x, d = fig.exact_pair
    s, t, dg, dh = fig.stretch_pair
    print(f"(b) witness: d_Hb_{NAMES[u]}({NAMES[u]},{NAMES[x]}) = {d} = d_G")
    print(f"(c) witness: d_Hc_{NAMES[s]}({NAMES[s]},{NAMES[t]}) = {dh} = 2*{dg}-1")
    return 0


def _cmd_scaling(args) -> int:
    from .experiments import udg_edge_scaling

    intensities = (15.0, 30.0, 60.0) if args.quick else (15.0, 30.0, 60.0, 120.0)
    res = udg_edge_scaling(intensities=intensities, side=3.0, trials=2, seed=args.seed)
    ns = [r.values["n"] for r in res.rows]
    print(
        render_table(
            ["mean n", "full edges", "spanner edges"],
            [
                [round(r.values["n"], 1), round(r.values["full_edges"], 1), round(r.values["spanner_edges"], 1)]
                for r in res.rows
            ],
            title="E-Th2-udg — Poisson UDG, fixed square",
        )
    )
    print()
    print(
        ascii_loglog(
            ns,
            [r.values["spanner_edges"] for r in res.rows],
            ref_slope=4 / 3,
            title=f"spanner edges vs n (fit n^{res.exponent('spanner_edges'):.2f}, paper 4/3)",
        )
    )
    print()
    print(
        ascii_loglog(
            ns,
            [r.values["full_edges"] for r in res.rows],
            ref_slope=2.0,
            title=f"full edges vs n (fit n^{res.exponent('full_edges'):.2f}, paper 2)",
        )
    )
    return 0


def _cmd_ksweep(args) -> int:
    from .experiments import k_sweep

    res = k_sweep(ks=(1, 2, 3, 4, 6), intensity=60.0, side=3.0, trials=2, seed=args.seed)
    xs = [r.x for r in res.rows]
    ys = [r.values["spanner_edges"] for r in res.rows]
    print(
        ascii_loglog(
            xs,
            ys,
            ref_slope=2 / 3,
            title=f"spanner edges vs k (fit k^{res.exponent('spanner_edges'):.2f}, paper 2/3)",
        )
    )
    return 0


def _cmd_epssweep(args) -> int:
    from .experiments import eps_sweep

    res = eps_sweep(epsilons=(1.0, 0.5, 1 / 3, 0.25), n=300, trials=2, seed=args.seed)
    xs = [r.x for r in res.rows]
    ys = [r.values["edges_per_n"] for r in res.rows]
    print(
        ascii_series(
            xs, ys, title="edges per node vs epsilon ((1+eps,1-2eps)-remote-spanner)"
        )
    )
    print(f"fitted exponent (1/eps)^{res.exponent('edges_per_n'):.2f} (paper bound: 3)")
    return 0


def _cmd_rounds(args) -> int:
    from .distributed import run_remspan
    from .graph.generators import random_connected_gnp

    g = random_connected_gnp(args.n, 3.0 / args.n, seed=args.seed)
    rows = []
    for kind, kwargs in (
        ("kcover", dict(k=1)),
        ("kcover", dict(k=2)),
        ("greedy", dict(r=3, beta=1)),
        ("mis", dict(r=3)),
        ("kmis", dict(k=2)),
    ):
        res = run_remspan(g, kind, **kwargs)
        rows.append(
            [
                f"{kind}{kwargs}",
                res.communication_rounds,
                res.expected_rounds,
                res.spanner.num_edges,
            ]
        )
    print(
        render_table(
            ["construction", "rounds", "expected (2r-1+2b)", "spanner edges"],
            rows,
            title=f"RemSpan on G(n={args.n}); round counts are graph-independent",
        )
    )
    return 0 if all(r[1] == r[2] for r in rows) else 1


def _cmd_churn(args) -> int:
    import time

    from .dynamic import SCENARIO_NAMES, SpannerMaintainer, make_scenario
    from .graph import Graph

    pool = None
    if args.workers:
        from .parallel import WorkerPool

        pool = WorkerPool(args.workers)

    def matches_rebuild(maintainer) -> bool:
        # With --workers the from-scratch reference spanner is assembled by
        # the pool: workers build the per-root trees on a shared CSR of the
        # live graph, the parent unions the edges (parallel construction).
        if pool is None:
            return maintainer.spanner.graph == maintainer.rebuilt_from_scratch().graph
        from .parallel import parallel_tree_edges

        trees = parallel_tree_edges(
            maintainer.graph,
            args.method,
            dict(k=args.k, epsilon=args.epsilon),
            pool,
        )
        union = Graph(
            maintainer.graph.num_nodes, (e for edges in trees.values() for e in edges)
        )
        return union == maintainer.spanner.graph

    names = SCENARIO_NAMES if args.scenario == "all" else (args.scenario,)
    rows = []
    all_ok = True
    for name in names:
        scenario = make_scenario(name, args.n, args.events, seed=args.seed)
        maintainer = SpannerMaintainer(
            scenario.initial,
            args.method,
            k=args.k,
            epsilon=args.epsilon,
            rebuild_fraction=args.rebuild_fraction,
        )
        ok = True
        checked_final = False
        t0 = time.perf_counter()
        reports = []
        for i, event in enumerate(scenario.events, start=1):
            reports.append(maintainer.apply(event))
            if args.check_every and i % args.check_every == 0:
                ok = ok and matches_rebuild(maintainer)
                checked_final = i == scenario.num_events
        elapsed = time.perf_counter() - t0
        if not checked_final:  # final state always verified, but only once
            ok = ok and matches_rebuild(maintainer)
        all_ok = all_ok and ok
        dirty = [r.dirty for r in reports if r.changed]
        rows.append(
            [
                name,
                len(reports),
                maintainer.incremental_repairs,
                maintainer.full_rebuilds,
                round(sum(dirty) / len(dirty), 1) if dirty else 0.0,
                round(elapsed * 1e3 / max(len(reports), 1), 2),
                maintainer.spanner.num_edges,
                ok,
            ]
        )
    print(
        render_table(
            [
                "scenario",
                "events",
                "incremental",
                "rebuilds",
                "mean dirty ball",
                "ms/event",
                "spanner edges",
                "matches rebuild",
            ],
            rows,
            title=(
                f"churn — {args.method} maintenance, n={args.n}, "
                f"{args.events} events, seed {args.seed}"
                + (f", verified on {args.workers} workers" if args.workers else "")
            ),
        )
    )
    if pool is not None:
        pool.close()
    return 0 if all_ok else 1


def _cmd_serve(args) -> int:
    from .dynamic import RoutingService, SCENARIO_NAMES, make_scenario
    from .graph import distance_cache_info, sample_pairs
    from .rng import derive_seed
    from .routing import route_all_pairs_stats, routing_table

    names = SCENARIO_NAMES if args.scenario == "all" else (args.scenario,)
    rows = []
    all_ok = True
    cache_lines = []
    for name in names:
        scenario = make_scenario(name, args.n, args.events, seed=args.seed)
        if args.workers:
            from .parallel import ShardedRoutingService

            service = ShardedRoutingService(
                scenario.initial,
                args.method,
                workers=args.workers,
                k=args.k,
                epsilon=args.epsilon,
                rebuild_fraction=args.rebuild_fraction,
            )
        else:
            service = RoutingService(
                scenario.initial,
                args.method,
                k=args.k,
                epsilon=args.epsilon,
                rebuild_fraction=args.rebuild_fraction,
            )

        def tables_match() -> bool:
            h, g = service.advertised, service.graph
            return all(service.table(u) == routing_table(h, g, u) for u in g.nodes())

        ok = True
        events = list(scenario.events)
        cadence = 1 if args.verify else args.check_every
        if cadence:
            reports = []
            applied = 0
            for lo in range(0, len(events), args.tick):
                tick = events[lo : lo + args.tick]
                reports.extend(service.apply_stream(tick, tick=args.tick))
                prev, applied = applied, applied + len(tick)
                # Verify whenever the tick crossed a check-every boundary
                # (ticks need not divide the cadence evenly).
                if prev // cadence < applied // cadence:
                    ok = ok and tables_match()
        else:
            reports = service.apply_stream(events, tick=args.tick)
        # Serving cost only — the interleaved tables_match() verification
        # rebuilds every table from scratch and would swamp ms/event.
        elapsed = sum(r.seconds for r in reports)
        ok = ok and tables_match()  # final state always verified
        all_ok = all_ok and ok
        ticks = max(len(reports), 1)
        mem = service.memory_stats()
        # Route a sample of live traffic over the final (H, G): exercises
        # the greedy forwarding path end-to-end, and its G-distance probes
        # (plus sample_pairs' connectivity checks) run through the BFS
        # distance cache whose counters are surfaced below.
        pairs = sample_pairs(
            service.graph,
            60,
            seed=derive_seed(args.seed, "serve-sample", name),
            require_nonadjacent=False,
        )
        routed = route_all_pairs_stats(service.advertised, service.graph, pairs=pairs)
        cache = distance_cache_info(service.graph)
        cache_lines.append(
            f"  {name}: routed {routed.delivered}/{routed.pairs} sampled pairs "
            f"(max stretch {routed.max_stretch:.2f}); distance cache "
            f"{cache.entries}/{cache.capacity} entries, {cache.hits} hits / "
            f"{cache.misses} misses / {cache.evictions} evictions"
        )
        rows.append(
            [
                name,
                len(events),
                round(service.rows_recomputed / ticks, 1),
                round(service.tables_recomputed / ticks, 1),
                service.entries_updated,
                service.full_refreshes,
                round(elapsed * 1e3 / max(len(events), 1), 2),
                round(mem.total_bytes / 1e6, 2),
                mem.dormant,
                ok,
            ]
        )
        if args.workers:
            service.close()
    print(
        render_table(
            [
                "scenario",
                "events",
                "rows/tick",
                "tables/tick",
                "entries upd",
                "refreshes",
                "ms/event",
                "matrix MB",
                "dormant ids",
                "matches scratch",
            ],
            rows,
            title=(
                f"serve — incremental routing tables over {args.method} maintenance, "
                f"n={args.n}, {args.events} events, tick {args.tick}, seed {args.seed}"
                + (f", {args.workers} workers" if args.workers else "")
            ),
        )
    )
    print("\n".join(cache_lines))
    return 0 if all_ok else 1


def _cmd_tune(args) -> int:
    from . import tuning

    result = tuning.calibrate(n=args.n, seed=args.seed, quick=args.quick)
    cross = result["auto_min_nodes"]
    print(
        render_table(
            ["n", "sets ms", "csr ms"],
            [
                [r["n"], round(r["sets_s"] * 1e3, 3), round(r["csr_s"] * 1e3, 3)]
                for r in cross["rows"]
            ],
            title="sets vs CSR backend — one BFS per 4th node",
        )
    )
    print()
    chunk = result["batch_chunk"]
    print(
        render_table(
            ["chunk", "APSP s"],
            [[r["chunk"], round(r["apsp_s"], 3)] for r in chunk["rows"]],
            title=f"batched_bfs chunk sweep — full APSP at n={chunk['n']}",
        )
    )
    active = result["active"]
    print()
    print(
        f"recommended: auto_min_nodes={cross['recommended']} "
        f"(active {active.auto_min_nodes}), batch_chunk={chunk['recommended']} "
        f"(active {active.batch_chunk})"
    )
    print("apply with:")
    print(f"  export REPRO_AUTO_MIN_NODES={cross['recommended']}")
    print(f"  export REPRO_BATCH_CHUNK={chunk['recommended']}")
    print("or repro.tuning.configure(batch_chunk=..., auto_min_nodes=...)")
    return 0


def _cmd_demo(args) -> int:
    from .core import (
        build_k_connecting_spanner,
        build_remote_spanner,
        is_remote_spanner,
        remote_stretch_stats,
    )
    from .experiments import largest_component, scaled_udg
    from .routing import full_link_state_cost, spanner_advertisement_cost

    g_full, _pts = scaled_udg(args.n, args.degree, seed=args.seed)
    g, _ids = largest_component(g_full)
    print(f"UDG: n={g.num_nodes} m={g.num_edges} max_deg={g.max_degree()}")
    # --epsilon < 1 selects the Theorem-1 builder; otherwise Theorem 2's
    # k-connecting exact-distance construction.
    if args.epsilon < 1.0:
        rs = build_remote_spanner(g, epsilon=args.epsilon)
    else:
        rs = build_k_connecting_spanner(g, k=args.k)
    ok = is_remote_spanner(rs.graph, g, rs.guarantee.alpha, rs.guarantee.beta)
    stats = remote_stretch_stats(rs.graph, g)
    ours = spanner_advertisement_cost(rs)
    ospf = full_link_state_cost(g)
    print(f"spanner: {rs.num_edges} edges ({rs.method}), guarantee {rs.guarantee}")
    print(f"verified: {ok}; max measured stretch {stats.max_ratio:.3f}")
    print(
        f"advertisement: {ours.entries_per_period} entries/period "
        f"({100 * ours.ratio_to(ospf):.0f}% of full link state)"
    )
    return 0 if ok else 1


_COMMANDS = {
    "table1": _cmd_table1,
    "figure1": _cmd_figure1,
    "scaling": _cmd_scaling,
    "ksweep": _cmd_ksweep,
    "epssweep": _cmd_epssweep,
    "rounds": _cmd_rounds,
    "churn": _cmd_churn,
    "serve": _cmd_serve,
    "tune": _cmd_tune,
    "demo": _cmd_demo,
}


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
