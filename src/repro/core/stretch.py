"""Stretch verification and measurement — the certification side of the repo.

These predicates implement the remote-spanner *definitions* directly
(BFS in :math:`H_u` per source; min-cost flow in :math:`H_s` for the
k-connecting condition) and share no code with the constructions, so
"construction passes checker" is meaningful evidence.

The remote-spanner condition is inherently *ordered*: the pair (u, v) is
checked in :math:`H_u` while (v, u) is checked in :math:`H_v` (paper §1:
"the definition ... is asymmetric with respect to u and v as is the
knowledge of u and v in a link state routing protocol").  All functions
here quantify over ordered pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import NotASubgraphError, ParameterError
from ..graph import AugmentedView, Graph, batched_bfs
from ..paths import k_connecting_profile

__all__ = [
    "remote_spanner_violations",
    "is_remote_spanner",
    "RemoteStretchStats",
    "remote_stretch_stats",
    "k_connecting_violations_spanner",
    "is_k_connecting_remote_spanner",
    "KConnectingStats",
    "k_connecting_stretch_stats",
]


def _check_subgraph(h: Graph, g: Graph) -> None:
    if not h.is_spanning_subgraph_of(g):
        raise NotASubgraphError("H must be a spanning sub-graph of G (V(H) = V(G), E(H) ⊆ E(G))")


# --------------------------------------------------------------------- #
# plain (α, β) remote stretch
# --------------------------------------------------------------------- #


def remote_spanner_violations(
    h: Graph, g: Graph, alpha: float, beta: float, sources: "Iterable[int] | None" = None
) -> list:
    """Ordered pairs violating :math:`d_{H_u}(u,v) ≤ α·d_G(u,v) + β`.

    Returns ``[(u, v, d_g, d_hu)]``; ``d_hu`` is ``math.inf`` when *v* is
    unreachable in :math:`H_u`.  Only nonadjacent pairs with ``d_G ≥ 2``
    are constrained (adjacent pairs are satisfied through the augmented
    edge).  Restricting *sources* lets large-graph benches sample.
    """
    _check_subgraph(h, g)
    h.freeze()  # every AugmentedView BFS below rides H's CSR snapshot
    bad: list = []
    sources = sources if sources is not None else g.nodes()
    for u, dg in batched_bfs(g, sources):
        dh = AugmentedView(h, g, u).distances_from(u)
        for v in g.nodes():
            if v == u or dg[v] < 2:
                continue  # unreachable (-1), self (0) or adjacent (1)
            d_hu: float = dh[v] if dh[v] >= 0 else math.inf
            if d_hu > alpha * dg[v] + beta + 1e-9:
                bad.append((u, v, dg[v], d_hu))
    return bad


def is_remote_spanner(
    h: Graph, g: Graph, alpha: float, beta: float, sources: "Iterable[int] | None" = None
) -> bool:
    """Whether H is an (α, β)-remote-spanner of G (exact, BFS-based)."""
    return not remote_spanner_violations(h, g, alpha, beta, sources)


@dataclass
class RemoteStretchStats:
    """Measured remote stretch over the checked ordered pairs."""

    pairs_checked: int = 0
    max_ratio: float = 0.0  # max over pairs of d_{H_u} / d_G
    mean_ratio: float = 0.0
    max_additive: float = 0.0  # max over pairs of d_{H_u} - d_G
    exact_fraction: float = 0.0  # fraction of pairs with d_{H_u} == d_G
    unreachable: int = 0  # pairs reachable in G but not in H_u
    by_distance: dict = field(default_factory=dict)  # d_G -> (count, max d_{H_u})

    def satisfies(self, alpha: float, beta: float) -> bool:
        """Whether every checked pair met ``α·d + β`` (needs per-pair data)."""
        if self.unreachable:
            return False
        return all(
            worst <= alpha * d + beta + 1e-9 for d, (_cnt, worst) in self.by_distance.items()
        )


def remote_stretch_stats(
    h: Graph, g: Graph, sources: "Iterable[int] | None" = None
) -> RemoteStretchStats:
    """Measure remote stretch of H over (sampled) ordered nonadjacent pairs."""
    _check_subgraph(h, g)
    h.freeze()
    stats = RemoteStretchStats()
    ratios_total = 0.0
    exact = 0
    for u, dg in batched_bfs(g, sources if sources is not None else g.nodes()):
        dh = AugmentedView(h, g, u).distances_from(u)
        for v in g.nodes():
            if v == u or dg[v] < 2:
                continue
            stats.pairs_checked += 1
            if dh[v] < 0:
                stats.unreachable += 1
                continue
            ratio = dh[v] / dg[v]
            ratios_total += ratio
            stats.max_ratio = max(stats.max_ratio, ratio)
            stats.max_additive = max(stats.max_additive, dh[v] - dg[v])
            if dh[v] == dg[v]:
                exact += 1
            cnt, worst = stats.by_distance.get(dg[v], (0, 0))
            stats.by_distance[dg[v]] = (cnt + 1, max(worst, dh[v]))
    reached = stats.pairs_checked - stats.unreachable
    stats.mean_ratio = ratios_total / reached if reached else 0.0
    stats.exact_fraction = exact / reached if reached else 0.0
    return stats


# --------------------------------------------------------------------- #
# k-connecting stretch (paper §3)
# --------------------------------------------------------------------- #


def _k1_distance_tables(
    h: Graph, g: Graph, pairs: "Sequence[tuple[int, int]]"
) -> "tuple[dict, dict]":
    """``(d_G rows, d_{H_s} rows)`` for every node appearing in *pairs*.

    The ``k = 1`` connecting distance is the plain shortest-path distance
    (one path is internally disjoint from nothing), so the k = 1 layer of
    the checkers needs no flow at all: one batched CSR BFS per distinct
    endpoint in G, and one :class:`AugmentedView` BFS per endpoint in
    :math:`H_s` (riding H's frozen snapshot).  This replaces a min-cost-flow
    run per ordered pair — the dominant cost of the k-connecting benches.
    """
    g.freeze()
    h.freeze()
    sources = sorted({x for pair in pairs for x in pair})
    dg = {s: dist for s, dist in batched_bfs(g, sources)}
    dh = {s: AugmentedView(h, g, s).distances_from(s) for s in sources}
    return dg, dh


def k_connecting_violations_spanner(
    h: Graph,
    g: Graph,
    k: int,
    alpha: float,
    beta: float,
    pairs: "Sequence[tuple[int, int]] | None" = None,
) -> list:
    """Ordered pairs violating the k-connecting stretch condition.

    For each ordered nonadjacent pair (s, t) and each ``k' ≤ k`` with
    :math:`d^{k'}_G(s,t) < ∞`, requires
    :math:`d^{k'}_{H_s}(s,t) ≤ α·d^{k'}_G(s,t) + k'·β`.  Finiteness of the
    left side also certifies the connectivity-preservation half of the
    definition.  Returns ``[(s, t, k', d_g, d_hs)]``.

    ``pairs`` (unordered) limits the check; both orientations of each
    listed pair are tested.  Cost is two min-cost-flow runs per pair.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    _check_subgraph(h, g)
    if pairs is None:
        n = g.num_nodes
        pairs = [
            (s, t) for s in range(n) for t in range(s + 1, n) if not g.has_edge(s, t)
        ]
    bad: list = []
    if k == 1:  # flow-free: d¹ is the BFS distance, batched over sources
        dg, dh = _k1_distance_tables(h, g, pairs)
        for s, t in pairs:
            if g.has_edge(s, t):
                continue
            for src, dst in ((s, t), (t, s)):
                d_g = dg[src][dst]
                if d_g < 0:
                    continue  # unreachable in G: nothing to require
                d_h: float = dh[src][dst] if dh[src][dst] >= 0 else math.inf
                if d_h > alpha * d_g + beta + 1e-9:
                    bad.append((src, dst, 1, d_g, d_h))
        return bad
    for s, t in pairs:
        if g.has_edge(s, t):
            continue
        profile_g = k_connecting_profile(g, s, t, k)
        for src, dst in ((s, t), (t, s)):
            view = AugmentedView(h, g, src)
            profile_h = k_connecting_profile(view, src, dst, k)
            for k_prime in range(1, k + 1):
                d_g = profile_g[k_prime - 1]
                if d_g == math.inf:
                    break  # higher k' are inf too; nothing to require
                d_h = profile_h[k_prime - 1]
                if d_h > alpha * d_g + k_prime * beta + 1e-9:
                    bad.append((src, dst, k_prime, d_g, d_h))
    return bad


def is_k_connecting_remote_spanner(
    h: Graph,
    g: Graph,
    k: int,
    alpha: float,
    beta: float,
    pairs: "Sequence[tuple[int, int]] | None" = None,
) -> bool:
    """Whether H is a k-connecting (α, β)-remote-spanner (exact, flow-based)."""
    return not k_connecting_violations_spanner(h, g, k, alpha, beta, pairs)


@dataclass
class KConnectingStats:
    """Measured k-connecting stretch over checked ordered pairs."""

    k: int = 1
    pairs_checked: int = 0
    max_ratio_by_k: dict = field(default_factory=dict)  # k' -> worst d^k_H / d^k_G
    connectivity_preserved: bool = True
    infeasible_pairs: int = 0  # pairs with d^k'_G finite but d^k'_{H_s} infinite


def k_connecting_stretch_stats(
    h: Graph, g: Graph, k: int, pairs: "Sequence[tuple[int, int]] | None" = None
) -> KConnectingStats:
    """Measure k-connecting stretch ratios of H over (sampled) pairs."""
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    _check_subgraph(h, g)
    if pairs is None:
        n = g.num_nodes
        pairs = [
            (s, t) for s in range(n) for t in range(s + 1, n) if not g.has_edge(s, t)
        ]
    stats = KConnectingStats(k=k)
    if k == 1:  # flow-free fast path (see _k1_distance_tables)
        dg, dh = _k1_distance_tables(h, g, pairs)
        for s, t in pairs:
            if g.has_edge(s, t):
                continue
            for src, dst in ((s, t), (t, s)):
                stats.pairs_checked += 1
                d_g = dg[src][dst]
                if d_g < 0:
                    continue
                if dh[src][dst] < 0:
                    stats.infeasible_pairs += 1
                    stats.connectivity_preserved = False
                    continue
                prev = stats.max_ratio_by_k.get(1, 0.0)
                stats.max_ratio_by_k[1] = max(prev, dh[src][dst] / d_g)
        return stats
    for s, t in pairs:
        if g.has_edge(s, t):
            continue
        profile_g = k_connecting_profile(g, s, t, k)
        for src, dst in ((s, t), (t, s)):
            stats.pairs_checked += 1
            view = AugmentedView(h, g, src)
            profile_h = k_connecting_profile(view, src, dst, k)
            for k_prime in range(1, k + 1):
                d_g = profile_g[k_prime - 1]
                if d_g == math.inf:
                    break
                d_h = profile_h[k_prime - 1]
                if d_h == math.inf:
                    stats.infeasible_pairs += 1
                    stats.connectivity_preserved = False
                    continue
                prev = stats.max_ratio_by_k.get(k_prime, 0.0)
                stats.max_ratio_by_k[k_prime] = max(prev, d_h / d_g)
    return stats
