"""Executable versions of the paper's §4 future-work directions.

Two constructions the concluding remarks sketch without proof, built so
the benches can probe them empirically:

1. **Edge-connecting remote-spanners.**  "It seems possible to extend our
   results to edge-connectivity."  The *naive* transfer — reuse Algorithm
   4's union as a k-edge-connecting (1, 0)-remote-spanner — is **false**,
   and this repo's property tests found a 7-node counterexample (see
   :func:`edge_conjecture_counterexample`): two triangles hanging off a
   hub, where the optimal edge-disjoint family reuses the cut vertex and
   needs triangle edges that the node-disjoint coverage rules discard.
   The exchange argument of Lemma 2 genuinely uses node-disjointness; an
   edge-connectivity extension needs different dominating structures.
   :func:`is_k_edge_connecting_remote_spanner` checks the property
   exactly (flow-based, edge-disjoint d^k) so candidates can be evaluated;
   :func:`naive_edge_candidate_failure_rate` quantifies how often the
   naive candidate fails on random instances.

2. **k-connecting (1+ε, O(1))-remote-spanners.**  "An interesting followup
   resides in constructing sparse k-connecting (1+ε, O(1))-remote-spanners
   for any ε > 0 and k > 1."  :func:`build_k_connecting_eps_spanner`
   assembles the obvious candidate — the union of Theorem 1's
   (⌈1/ε⌉+1, 1)-dominating trees with Theorem 3's k-connecting (2, 1)
   trees — which inherits (1+ε, 1−2ε) plain stretch *by construction*
   (it contains a Theorem-1 spanner) while the k-connecting stretch is
   measured, not guaranteed.  :func:`evaluate_k_connecting_eps` reports
   the measured k-connecting ratios so experiments can chart how far the
   naive union is from the conjectured goal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import NotASubgraphError, ParameterError
from ..graph import AugmentedView, Graph
from ..paths.edge_disjoint import k_edge_connecting_profile
from .domtree_kmis import dom_tree_kmis
from .domtree_mis import dom_tree_mis
from .remote_spanner import (
    RemoteSpanner,
    StretchGuarantee,
    build_from_trees,
    effective_epsilon,
    epsilon_to_radius,
)

__all__ = [
    "is_k_edge_connecting_remote_spanner",
    "k_edge_connecting_violations",
    "build_edge_connecting_spanner",
    "edge_conjecture_counterexample",
    "naive_edge_candidate_failure_rate",
    "build_k_connecting_eps_spanner",
    "KConnectingEpsReport",
    "evaluate_k_connecting_eps",
]


# --------------------------------------------------------------------- #
# 1. edge-connectivity
# --------------------------------------------------------------------- #


def k_edge_connecting_violations(
    h: Graph,
    g: Graph,
    k: int,
    alpha: float,
    beta: float,
    pairs: "Sequence[tuple[int, int]] | None" = None,
) -> list:
    """Ordered pairs violating the *edge*-connecting stretch condition.

    The edge-disjoint analog of
    :func:`repro.core.stretch.k_connecting_violations_spanner`:
    for nonadjacent (s, t) and k' ≤ k with finite edge-disjoint
    :math:`d^{k'}_G`, require
    :math:`d^{k'}_{H_s} ≤ α·d^{k'}_G + k'·β` under edge-disjointness.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    if not h.is_spanning_subgraph_of(g):
        raise NotASubgraphError("H must be a spanning sub-graph of G")
    if pairs is None:
        n = g.num_nodes
        pairs = [
            (s, t) for s in range(n) for t in range(s + 1, n) if not g.has_edge(s, t)
        ]
    bad: list = []
    for s, t in pairs:
        if g.has_edge(s, t):
            continue
        profile_g = k_edge_connecting_profile(g, s, t, k)
        for src, dst in ((s, t), (t, s)):
            view = AugmentedView(h, g, src)
            profile_h = k_edge_connecting_profile(view, src, dst, k)
            for k_prime in range(1, k + 1):
                d_g = profile_g[k_prime - 1]
                if d_g == math.inf:
                    break
                d_h = profile_h[k_prime - 1]
                if d_h > alpha * d_g + k_prime * beta + 1e-9:
                    bad.append((src, dst, k_prime, d_g, d_h))
    return bad


def is_k_edge_connecting_remote_spanner(
    h: Graph,
    g: Graph,
    k: int,
    alpha: float,
    beta: float,
    pairs: "Sequence[tuple[int, int]] | None" = None,
) -> bool:
    """Exact check of the edge-connecting remote-spanner property."""
    return not k_edge_connecting_violations(h, g, k, alpha, beta, pairs)


def build_edge_connecting_spanner(g: Graph, k: int = 2) -> RemoteSpanner:
    """The NAIVE §4 edge-connectivity candidate: Algorithm 4's union.

    Identical edges to :func:`build_k_connecting_spanner`.  For k = 1 the
    edge- and node-disjoint conditions coincide, so the result is correct;
    for k ≥ 2 it is **not** an edge-connecting remote-spanner in general —
    see :func:`edge_conjecture_counterexample`.  Kept as the baseline the
    extension experiments measure failure rates against.
    """
    from .remote_spanner import build_k_connecting_spanner

    rs = build_k_connecting_spanner(g, k=k)
    return RemoteSpanner(
        graph=rs.graph,
        trees=rs.trees,
        guarantee=StretchGuarantee(1.0, 0.0, k),
        method=f"edge-connecting-candidate(k={k})",
    )


def edge_conjecture_counterexample() -> "tuple[Graph, RemoteSpanner, list]":
    """The 7-node refutation of the naive §4 edge-connectivity transfer.

    ``G`` is two triangles (2-3-4 and 4-5-6) hanging off hub 4 plus a
    pendant path 0-4 (and 0-1).  For the pair (2, 5):
    :math:`d^2_{edge,G}(2,5) = 6` via 2-4-5 and 2-3-4-6-5 — the two paths
    share node 4 but no edge.  Algorithm 4's union (k = 2) discards the
    triangle edges (2,3) and (5,6) because no *node-disjoint* distance-2
    requirement needs them, leaving :math:`d^2_{edge,H_2}(2,5) = ∞`.

    Returns ``(G, naive_spanner, violations)`` with violations non-empty.
    """
    g = Graph(7, [(0, 1), (0, 4), (2, 3), (2, 4), (3, 4), (4, 5), (4, 6), (5, 6)])
    rs = build_edge_connecting_spanner(g, k=2)
    viol = k_edge_connecting_violations(rs.graph, g, 2, 1.0, 0.0)
    return g, rs, viol


def naive_edge_candidate_failure_rate(
    graphs: "Sequence[Graph]", k: int = 2
) -> "tuple[int, int]":
    """``(failures, total)`` of the naive candidate over *graphs*."""
    failures = 0
    for g in graphs:
        rs = build_edge_connecting_spanner(g, k=k)
        if k_edge_connecting_violations(rs.graph, g, k, 1.0, 0.0):
            failures += 1
    return failures, len(graphs)


# --------------------------------------------------------------------- #
# 2. k-connecting (1+ε, O(1)) candidate
# --------------------------------------------------------------------- #


def build_k_connecting_eps_spanner(g: Graph, k: int, epsilon: float) -> RemoteSpanner:
    """The naive union candidate for §4's k-connecting (1+ε, O(1)) goal.

    Per node: a (⌈1/ε⌉+1, 1)-dominating tree (Theorem 1's ingredient —
    certifies plain stretch (1+ε', 1−2ε')) unioned with a k-connecting
    (2, 1)-dominating tree (Theorem 3's ingredient — certifies
    k'-connectivity preservation locally).  The k-connecting *stretch* of
    the union is an open question; :func:`evaluate_k_connecting_eps`
    measures it.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    r = epsilon_to_radius(epsilon)
    eps_eff = effective_epsilon(r)

    def both_trees(graph: Graph, u: int):
        tree = dom_tree_mis(graph, u, r)
        k_tree = dom_tree_kmis(graph, u, k)
        # Merge the k-tree into the ε-tree's parent map where compatible;
        # nodes already present keep their (shallower or equal) parents.
        for path_node in k_tree.nodes() - tree.nodes():
            root_path = list(reversed(k_tree.path_to_root(path_node)))
            tree.add_root_path(root_path)
        return tree

    guarantee = StretchGuarantee(1.0 + eps_eff, 1.0 - 2.0 * eps_eff, k)
    return build_from_trees(
        g, both_trees, guarantee, method=f"kconn-eps-candidate(k={k}, r={r})"
    )


@dataclass
class KConnectingEpsReport:
    """Measured behaviour of the §4 candidate construction."""

    edges: int
    plain_stretch_ok: bool  # the guaranteed part
    max_kconn_ratio: float  # measured d^k ratio (no guarantee)
    kconn_additive_worst: float  # worst d^k_H − (1+ε)·d^k_G
    pairs_checked: int


def evaluate_k_connecting_eps(
    g: Graph,
    k: int,
    epsilon: float,
    pairs: "Sequence[tuple[int, int]] | None" = None,
) -> KConnectingEpsReport:
    """Build the §4 candidate and measure its k-connecting behaviour."""
    from ..paths import k_connecting_profile
    from .stretch import is_remote_spanner

    rs = build_k_connecting_eps_spanner(g, k, epsilon)
    plain_ok = is_remote_spanner(rs.graph, g, rs.guarantee.alpha, rs.guarantee.beta)
    if pairs is None:
        n = g.num_nodes
        pairs = [
            (s, t) for s in range(n) for t in range(s + 1, n) if not g.has_edge(s, t)
        ]
    worst_ratio = 0.0
    worst_add = -math.inf
    checked = 0
    for s, t in pairs:
        profile_g = k_connecting_profile(g, s, t, k)
        d_g = profile_g[k - 1]
        if d_g == math.inf:
            continue
        checked += 1
        view = AugmentedView(rs.graph, g, s)
        d_h = k_connecting_profile(view, s, t, k)[k - 1]
        if d_h == math.inf:
            worst_ratio = math.inf
            worst_add = math.inf
            continue
        worst_ratio = max(worst_ratio, d_h / d_g)
        worst_add = max(worst_add, d_h - rs.guarantee.alpha * d_g)
    return KConnectingEpsReport(
        edges=rs.num_edges,
        plain_stretch_ok=plain_ok,
        max_kconn_ratio=worst_ratio,
        kconn_additive_worst=worst_add if worst_add != -math.inf else 0.0,
        pairs_checked=checked,
    )
