"""Algorithm 4 — ``DomTreeGdy_{2,0,k}(u)``: k-coverage multipoint relays.

Builds a k-connecting (2, 0)-dominating tree: a depth-1 star ``{ux : x ∈ M}``
where ``M ⊆ N(u)`` covers every node at distance 2 from *u* at least k
times (or as many times as its common-neighborhood allows — the definition's
"``uw ∈ E(T)`` for all ``w ∈ N(u) ∩ N(v)``" escape clause).

This is exactly the *k-coverage multipoint relay* selection of OLSR
[4, 5] — the paper's observation is that the union of these stars over all
nodes forms a k-connecting (1, 0)-remote-spanner (Proposition 5 /
Theorem 2), a fact never proved in the MPR literature.

Guarantee (Proposition 6): ``|M|`` is within ``1 + log Δ`` of the optimal
k-connecting (2, 0)-dominating tree, by the Dobson/Wolsey analysis of
greedy multicover [12, 26].

The greedy gain is the paper's literal ``|B_G(x, 1) ∩ S|`` where S holds
the *not yet fully covered* distance-2 nodes (subtly different from the
residual-demand gain of :func:`repro.setcover.greedy_multicover`; both have
the same guarantee, we reproduce the paper's rule).  Ties break on smallest
node id.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..graph import Graph
from ..graph.traversal import bfs_layers
from .domtree import DomTree

__all__ = ["dom_tree_kcover", "mpr_set"]


def dom_tree_kcover(g: Graph, u: int, k: int) -> DomTree:
    """Compute a k-connecting (2, 0)-dominating tree for *u* (Algorithm 4).

    Implements the paper's greedy with incremental bookkeeping (identical
    output, near-linear work in the local edge count): per candidate we
    maintain ``gain[x] = |N(x) ∩ S|``; per 2-ring node, its current
    coverage ``cov[v] = |N(v) ∩ M|`` and the count of still-available
    common neighbors ``avail[v] = |N(v) ∩ N(u) \\ M|``.  The S-removal rule
    "``N(v) ∩ N(u) ⊆ M`` or ``|N(v) ∩ M| ≥ k``" becomes
    ``avail[v] == 0 or cov[v] ≥ k``; a node's removal decrements the gains
    of its candidate neighbors.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    layers = bfs_layers(g, u, cutoff=2)
    two_ring = set(layers[2]) if len(layers) > 2 else set()
    nu = g.neighbors(u)

    tree = DomTree(root=u)
    if not two_ring:
        return tree
    in_s: dict[int, bool] = {v: True for v in two_ring}
    cov = {v: 0 for v in two_ring}
    avail = {v: len(g.neighbors(v) & nu) for v in two_ring}
    candidates = sorted(nu)
    gain = {x: len(g.neighbors(x) & two_ring) for x in candidates}
    picked: set[int] = set()
    s_size = len(two_ring)
    while s_size > 0:
        best_x = -1
        best_gain = 0
        for x in candidates:
            if x in picked:
                continue
            gx = gain[x]
            if gx > best_gain:
                best_gain = gx
                best_x = x
        if best_x < 0:  # pragma: no cover — S ≠ ∅ implies a usable candidate
            raise ParameterError("uncoverable 2-ring: inconsistent input graph")
        picked.add(best_x)
        tree.add_root_path([u, best_x])
        # Update coverage for the nodes best_x touches, then sweep removals.
        removed: list[int] = []
        for v in g.neighbors(best_x):
            if v not in in_s:
                continue
            if in_s[v]:
                cov[v] += 1
                avail[v] -= 1
                if cov[v] >= k or avail[v] == 0:
                    in_s[v] = False
                    removed.append(v)
            else:
                avail[v] -= 1  # bookkeeping stays exact for later picks
        for v in removed:
            s_size -= 1
            for x in g.neighbors(v) & nu:
                if x in gain:
                    gain[x] -= 1
    return tree


def mpr_set(g: Graph, u: int, k: int = 1) -> set[int]:
    """The multipoint-relay set ``M ⊆ N(u)`` selected by Algorithm 4.

    ``k = 1`` is the classical OLSR MPR selection [15, 4]; larger k is the
    k-coverage extension [5].  Exposed separately because the routing and
    flooding experiments consume the relay sets directly.
    """
    tree = dom_tree_kcover(g, u, k)
    return tree.nodes() - {u}
