"""Exact optimal dominating trees — the OPT side of Propositions 2 and 6.

Proposition 2 bounds Algorithm 1's tree against the minimum-edge
(r, β)-dominating tree; Proposition 6 bounds Algorithm 4's star against the
minimum k-connecting (2, 0)-dominating tree; Theorem 2 turns the latter
into a global 2(1+log Δ) guarantee via
:math:`2|E(H^*)| ≥ \\sum_u |E(T^*_u)|`.  This module computes those optima
exactly on small instances:

* :func:`optimal_dom_tree_edges` — exhaustive subset search over candidate
  node sets (the minimum-edge tree on a node set ``W ∪ {u}`` realizes
  induced-sub-graph BFS distances, so feasibility of a node set is a BFS
  check and |edges| = |W|);
* :func:`optimal_kconnecting_star_size` — exact multicover through
  :mod:`repro.setcover.exact` (demand ``min(k, |N(v) ∩ N(u)|)`` encodes
  the definition's escape clause);
* :func:`k_connecting_spanner_lower_bound` — Theorem 2's
  ``Σ_u |E(T*_u)| / 2`` lower bound on any k-connecting
  (1, 0)-remote-spanner of G.
"""

from __future__ import annotations

import math
from itertools import combinations

from ..errors import ParameterError
from ..graph import Graph, bfs_distances
from ..graph.traversal import bfs_layers
from ..setcover import SetCoverInstance, exact_multicover

__all__ = [
    "optimal_dom_tree_edges",
    "optimal_kconnecting_star_size",
    "k_connecting_spanner_lower_bound",
]

_SEARCH_LIMIT = 22  # max candidate pool size for the exhaustive tree search


def optimal_dom_tree_edges(g: Graph, u: int, r: int, beta: int) -> int:
    """Minimum edge count of an (r, β)-dominating tree for *u* (exact).

    Exhaustive search over node subsets ``W`` of the candidate pool
    ``B_G(u, r−1+β) \\ {u}`` in increasing size; a subset is feasible when
    every node *v* at distance ``2 ≤ r' ≤ r`` has a neighbor
    ``x ∈ W ∪ {u}`` with ``d_{G[W ∪ {u}]}(u, x) ≤ r' − 1 + β``.  The
    minimum-edge tree on a fixed node set is its induced BFS tree, so
    |E| = |W| for the smallest feasible W.

    Raises :class:`~repro.errors.ParameterError` when the candidate pool
    exceeds the exhaustive-search limit (this is an exact reference
    implementation for small instances, not a production solver).
    """
    if r < 2:
        raise ParameterError(f"r must be ≥ 2, got {r}")
    if beta < 0:
        raise ParameterError(f"β must be ≥ 0, got {beta}")
    dist = bfs_distances(g, u, cutoff=max(r, r - 1 + beta))
    targets = [(v, dist[v]) for v in g.nodes() if 2 <= dist[v] <= r]
    if not targets:
        return 0
    pool = [x for x in g.nodes() if 1 <= dist[x] <= r - 1 + beta]
    if len(pool) > _SEARCH_LIMIT:
        raise ParameterError(
            f"candidate pool of {len(pool)} exceeds exhaustive limit {_SEARCH_LIMIT}"
        )

    def feasible(w: "tuple[int, ...]") -> bool:
        wset = set(w)
        wset.add(u)
        # BFS restricted to W ∪ {u}.
        d_ind = {u: 0}
        frontier = [u]
        while frontier:
            nxt = []
            for a in frontier:
                for b in g.neighbors(a):
                    if b in wset and b not in d_ind:
                        d_ind[b] = d_ind[a] + 1
                        nxt.append(b)
            frontier = nxt
        for v, rp in targets:
            if not any(
                x in d_ind and d_ind[x] <= rp - 1 + beta for x in g.neighbors(v)
            ):
                return False
        return True

    for size in range(0, len(pool) + 1):
        for w in combinations(pool, size):
            if feasible(w):
                return size
    raise ParameterError("no dominating tree exists — disconnected ball?")  # pragma: no cover


def optimal_kconnecting_star_size(g: Graph, u: int, k: int) -> int:
    """Minimum size of a k-connecting (2, 0)-dominating tree for *u* (exact).

    The tree is a star ``{ux : x ∈ M}``; M must cover every distance-2
    node *v* ``min(k, |N(v) ∩ N(u)|)`` times — an exact multicover
    instance solved by branch and bound.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    layers = bfs_layers(g, u, cutoff=2)
    two_ring = layers[2] if len(layers) > 2 else []
    if not two_ring:
        return 0
    nu = g.neighbors(u)
    sets = {x: frozenset(g.neighbors(x) & set(two_ring)) for x in nu}
    demand = {v: min(k, len(g.neighbors(v) & nu)) for v in two_ring}
    inst = SetCoverInstance.from_sets(sets, universe=two_ring, demand=demand)
    return len(exact_multicover(inst))


def k_connecting_spanner_lower_bound(g: Graph, k: int) -> float:
    """Theorem 2's lower bound on edges of ANY k-connecting (1,0)-remote-spanner.

    An optimal spanner H* induces a k-connecting (2, 0)-dominating tree for
    every u; those trees are depth-1, so ``deg_{H*}(u) ≥ |E(T*_u)|`` and
    ``|E(H*)| ≥ Σ_u |E(T*_u)| / 2``.
    """
    total = sum(optimal_kconnecting_star_size(g, u, k) for u in g.nodes())
    return math.ceil(total / 2)
