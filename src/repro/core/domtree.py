"""Dominating trees: the local objects remote-spanners are made of.

The paper's methodology (§1.1) characterizes remote-spanner classes as
unions of small-depth tree sub-graphs that dominate nearby nodes:

* an **(r, β)-dominating tree** for *u* is a tree ``T ⊆ G`` rooted at *u*
  such that every node *v* at distance ``2 ≤ r' ≤ r`` from *u* has a
  neighbor ``x ∈ V(T)`` with ``d_T(u, x) ≤ r' − 1 + β``;
* a **k-connecting (2, β)-dominating tree** for *u* dominates every node
  *v* at distance 2 in a stronger sense: either ``uw ∈ E(T)`` for *all*
  common neighbors ``w ∈ N(u) ∩ N(v)``, or *v* has k neighbors in
  ``B_T(u, 1+β)`` whose tree paths to *u* share only *u* and have length
  ≤ 1 + β.

This module defines the :class:`DomTree` value type (root + parent map —
tree-ness by construction) and the *definition-level* predicates used to
certify every constructed tree.  The predicates share no code with the
constructions in the sibling modules, so agreement between the two is a
meaningful check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import GraphError, ParameterError
from ..graph import Graph, batched_bfs, bfs_distances
from ..graph.traversal import bfs_layers

__all__ = [
    "DomTree",
    "is_dominating_tree",
    "dominating_tree_violations",
    "is_k_connecting_dominating_tree",
    "k_connecting_violations",
    "induces_dominating_trees",
    "induces_k_connecting_star_trees",
]


@dataclass
class DomTree:
    """A rooted tree sub-graph, stored as a parent map.

    ``parent[root] == root``; every other tree node maps to its parent.
    The representation makes tree-ness structural: a parent map cannot
    encode a cycle reachable from the root, and :meth:`validate` checks the
    remaining requirements (all nodes reach the root; edges exist in G).
    """

    root: int
    parent: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.parent.setdefault(self.root, self.root)
        if self.parent[self.root] != self.root:
            raise ParameterError(f"root {self.root} must be its own parent")

    # ------------------------------------------------------------------ #

    def nodes(self) -> set[int]:
        """``V(T)``."""
        return set(self.parent)

    def edges(self) -> Iterator["tuple[int, int]"]:
        """``E(T)`` in canonical orientation."""
        for x, p in self.parent.items():
            if x != p:
                yield (x, p) if x < p else (p, x)

    @property
    def num_edges(self) -> int:
        return len(self.parent) - 1

    def __contains__(self, x: int) -> bool:
        return x in self.parent

    def depth(self, x: int) -> int:
        """``d_T(root, x)``; raises if x not in the tree."""
        if x not in self.parent:
            raise ParameterError(f"node {x} not in tree rooted at {self.root}")
        d = 0
        while x != self.root:
            x = self.parent[x]
            d += 1
            if d > len(self.parent):
                raise GraphError("parent map contains a cycle")
        return d

    def depths(self) -> dict:
        """Depth of every tree node (single pass with memoization)."""
        out: dict[int, int] = {self.root: 0}

        def resolve(x: int) -> int:
            trail = []
            while x not in out:
                trail.append(x)
                x = self.parent[x]
                if len(trail) > len(self.parent):
                    raise GraphError("parent map contains a cycle")
            d = out[x]
            for node in reversed(trail):
                d += 1
                out[node] = d
            return out[trail[0]] if trail else d

        for node in self.parent:
            resolve(node)
        return out

    def branch(self, x: int) -> int:
        """The child of the root on the root-path of *x* (x itself if depth 1).

        Two tree nodes' root-paths share only the root iff their branches
        differ — the disjointness test of the k-connecting definition.
        """
        if x == self.root:
            raise ParameterError("root has no branch")
        steps = 0
        while self.parent[x] != self.root:
            x = self.parent[x]
            steps += 1
            if steps > len(self.parent):
                raise GraphError("parent map contains a cycle")
        return x

    def path_to_root(self, x: int) -> list[int]:
        """Node sequence ``[x, ..., root]``."""
        out = [x]
        while out[-1] != self.root:
            out.append(self.parent[out[-1]])
            if len(out) > len(self.parent) + 1:
                raise GraphError("parent map contains a cycle")
        return out

    def add_root_path(self, path_from_root: list[int]) -> None:
        """Graft a path ``[root, a, b, ..., x]`` onto the tree.

        Prefix nodes already present keep their existing parents; this is
        only safe when the path is consistent with previous insertions
        (true for BFS-parent paths, which all constructions use).
        """
        if not path_from_root or path_from_root[0] != self.root:
            raise ParameterError("path must start at the root")
        for prev, node in zip(path_from_root, path_from_root[1:]):
            if node in self.parent:
                continue
            self.parent[node] = prev

    def to_graph(self, n: int) -> Graph:
        """Materialize as a :class:`~repro.graph.Graph` on *n* nodes."""
        return Graph(n, self.edges())

    def validate(self, g: Graph) -> None:
        """Check the tree is a sub-graph of *g* and all nodes reach the root."""
        for x, p in self.parent.items():
            if x != p and not g.has_edge(x, p):
                raise GraphError(f"tree edge ({x}, {p}) missing from graph")
        self.depths()  # raises on cycles / unreachable


# --------------------------------------------------------------------- #
# definition-level predicates
# --------------------------------------------------------------------- #


def dominating_tree_violations(g: Graph, tree: DomTree, r: int, beta: int) -> list:
    """Nodes violating the (r, β)-dominating-tree condition for ``tree.root``.

    Returns ``[(v, r', best)]`` triples where *best* is the smallest tree
    depth of a neighbor of *v* in ``V(T)`` (or ``None``), for every *v* at
    distance ``2 ≤ r' ≤ r`` with ``best > r' − 1 + β``.
    """
    if r < 2:
        raise ParameterError(f"r must be ≥ 2, got {r}")
    if beta < 0:
        raise ParameterError(f"β must be ≥ 0, got {beta}")
    u = tree.root
    dist = bfs_distances(g, u, cutoff=r)
    depths = tree.depths()
    bad: list = []
    for v in g.nodes():
        rp = dist[v]
        if rp < 2:
            continue
        best: "int | None" = None
        for x in g.neighbors(v):
            if x in depths and (best is None or depths[x] < best):
                best = depths[x]
        if best is None or best > rp - 1 + beta:
            bad.append((v, rp, best))
    return bad


def is_dominating_tree(g: Graph, tree: DomTree, r: int, beta: int) -> bool:
    """Whether *tree* is an (r, β)-dominating tree for its root in *g*."""
    tree.validate(g)
    return not dominating_tree_violations(g, tree, r, beta)


def k_connecting_violations(g: Graph, tree: DomTree, k: int, beta: int) -> list:
    """Distance-2 nodes violating the k-connecting (2, β)-dominating condition.

    For each *v* at distance 2 from the root *u*, the condition holds when
    either (a) every common neighbor ``w ∈ N(u) ∩ N(v)`` has ``uw ∈ E(T)``,
    or (b) *v* has k neighbors in ``B_T(u, 1+β)`` lying on k distinct
    branches of T (tree paths pairwise sharing only *u*) of length ≤ 1+β.
    In a tree, path-disjointness is exactly branch-distinctness, so (b)
    reduces to counting distinct branches among qualifying neighbors.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    if beta < 0:
        raise ParameterError(f"β must be ≥ 0, got {beta}")
    u = tree.root
    layers = bfs_layers(g, u, cutoff=2)
    two_ring = layers[2] if len(layers) > 2 else []
    depths = tree.depths()
    nu = g.neighbors(u)
    root_children = {x for x, p in tree.parent.items() if p == u and x != u}
    bad: list = []
    for v in two_ring:
        common = g.neighbors(v) & nu
        if common <= root_children:
            continue  # clause (a): all common neighbors are direct tree edges
        branches = set()
        for x in g.neighbors(v):
            d = depths.get(x)
            if d is not None and 1 <= d <= 1 + beta:
                branches.add(tree.branch(x))
        if len(branches) < k:
            bad.append((v, len(branches)))
    return bad


def is_k_connecting_dominating_tree(g: Graph, tree: DomTree, k: int, beta: int) -> bool:
    """Whether *tree* is a k-connecting (2, β)-dominating tree for its root."""
    tree.validate(g)
    return not k_connecting_violations(g, tree, k, beta)


# --------------------------------------------------------------------- #
# "induces" predicates — existence of suitable trees inside a sub-graph H
# --------------------------------------------------------------------- #


def induces_dominating_trees(h: Graph, g: Graph, r: int, beta: int) -> bool:
    """Whether H contains an (r, β)-dominating tree for *every* node of G.

    Existence reduces to distances: the BFS tree of H from *u* realizes
    ``d_T(u, x) = d_H(u, x)`` and no tree inside H can do better, so H
    induces a tree for *u* iff every *v* at distance ``2 ≤ r' ≤ r`` (in G)
    has a neighbor *x* with ``d_H(u, x) ≤ r' − 1 + β``.  This is the form
    Propositions 1 and 5 are tested through.
    """
    if r < 2:
        raise ParameterError(f"r must be ≥ 2, got {r}")
    g.freeze()  # the cutoff-r BFS per node below rides the CSR snapshot
    # Small chunk: the predicate early-exits on the first violating node,
    # so at most chunk-1 prefetched BFS runs are discarded on failure.
    for u, dist_h in batched_bfs(h, g.nodes(), chunk=16):
        dist_g = bfs_distances(g, u, cutoff=r)
        for v in g.nodes():
            rp = dist_g[v]
            if rp < 2:
                continue
            ok = any(
                dist_h[x] != -1 and dist_h[x] <= rp - 1 + beta for x in g.neighbors(v)
            )
            if not ok:
                return False
    return True


def induces_k_connecting_star_trees(h: Graph, g: Graph, k: int) -> bool:
    """Whether H induces a k-connecting (2, 0)-dominating tree for every node.

    With β = 0 qualifying neighbors must be tree-children of the root, so
    the only tree that matters is the star of *u*'s H-edges: the condition
    is per-node and per-v — either all common neighbors ``w ∈ N(u) ∩ N(v)``
    satisfy ``uw ∈ E(H)``, or at least k of them do.  (Proposition 5 uses
    exactly this characterization.)
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    g.freeze()  # per-node 2-ball BFS below rides the CSR snapshot
    for u in g.nodes():
        star = {w for w in g.neighbors(u) if h.has_edge(u, w)}
        layers = bfs_layers(g, u, cutoff=2)
        for v in layers[2] if len(layers) > 2 else []:
            common = g.neighbors(v) & g.neighbors(u)
            if common <= star:
                continue
            if len(common & star) < k:
                return False
    return True
