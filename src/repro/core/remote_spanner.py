"""Remote-spanner construction — the paper's headline deliverables.

A remote-spanner is assembled exactly as Algorithm 3 prescribes: compute a
dominating tree ``T_u`` for every node *u* and take the union of their
edges.  The three theorem-level products:

* :func:`build_remote_spanner` — Theorem 1's ``(1+ε, 1−2ε)``-remote-spanner
  from ``(⌈1/ε⌉+1, 1)``-dominating trees (Proposition 1), via either the
  MIS trees of Algorithm 2 (default; linear size on doubling unit ball
  graphs) or the greedy trees of Algorithm 1;
* :func:`build_k_connecting_spanner` — Theorem 2's k-connecting
  ``(1, 0)``-remote-spanner from the k-coverage MPR stars of Algorithm 4
  (Proposition 5); ``k = 1`` gives plain exact-distance remote-spanners;
* :func:`build_biconnecting_spanner` — Theorem 3's 2-connecting
  ``(2, −1)``-remote-spanner from Algorithm 5's trees (Proposition 4).

Every builder returns a :class:`RemoteSpanner` carrying the spanner graph,
the per-node trees (the objects a router would actually advertise), and the
stretch guarantee the construction certifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping

from ..errors import ParameterError
from ..graph import Graph
from .domtree import DomTree
from .domtree_greedy import dom_tree_greedy
from .domtree_kcover import dom_tree_kcover
from .domtree_kmis import dom_tree_kmis
from .domtree_mis import dom_tree_mis

__all__ = [
    "StretchGuarantee",
    "RemoteSpanner",
    "epsilon_to_radius",
    "effective_epsilon",
    "build_remote_spanner",
    "build_k_connecting_spanner",
    "build_biconnecting_spanner",
    "build_from_trees",
]


@dataclass(frozen=True)
class StretchGuarantee:
    """An ``(α, β)`` stretch promise, optionally k-connecting.

    ``k = 1`` is the plain remote-spanner condition; for ``k > 1`` the
    promise is :math:`d^{k'}_{H_s}(s,t) ≤ α·d^{k'}_G(s,t) + k'·β` for all
    ``k' ≤ k`` (paper §3).
    """

    alpha: float
    beta: float
    k: int = 1

    def bound(self, d: float, k_prime: int = 1) -> float:
        """The guaranteed upper bound for a pair at (k'-connecting) distance d."""
        return self.alpha * d + k_prime * self.beta

    def __str__(self) -> str:
        base = f"({self.alpha:g}, {self.beta:g})"
        return base if self.k == 1 else f"{self.k}-connecting {base}"


@dataclass
class RemoteSpanner:
    """A constructed remote-spanner: graph + per-node trees + guarantee."""

    graph: Graph
    trees: "Mapping[int, DomTree]"
    guarantee: StretchGuarantee
    method: str

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def tree_for(self, u: int) -> DomTree:
        """The dominating tree advertised by node *u*."""
        return self.trees[u]

    def density(self, g: Graph) -> float:
        """Fraction of the input graph's edges kept (1.0 = no savings)."""
        return self.graph.num_edges / g.num_edges if g.num_edges else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteSpanner(edges={self.num_edges}, guarantee={self.guarantee}, "
            f"method={self.method!r})"
        )


# --------------------------------------------------------------------- #
# ε ↔ r translation (Proposition 1)
# --------------------------------------------------------------------- #


def epsilon_to_radius(epsilon: float) -> int:
    """The domination radius ``r = ⌈1/ε⌉ + 1`` of Proposition 1."""
    if not (0.0 < epsilon <= 1.0):
        raise ParameterError(f"ε must be in (0, 1], got {epsilon}")
    return math.ceil(Fraction(epsilon).limit_denominator(10**9) ** -1) + 1


def effective_epsilon(r: int) -> float:
    """The stretch actually certified by radius r: ``ε' = 1/(r−1) ≤ ε``.

    Proposition 1's proof shows the construction achieves
    ``(1 + ε', 1 − 2ε')`` which implies the requested ``(1 + ε, 1 − 2ε)``.
    """
    if r < 2:
        raise ParameterError(f"r must be ≥ 2, got {r}")
    return 1.0 / (r - 1)


# --------------------------------------------------------------------- #
# builders
# --------------------------------------------------------------------- #


def build_from_trees(
    g: Graph, tree_fn: "Callable[[Graph, int], DomTree]", guarantee: StretchGuarantee, method: str
) -> RemoteSpanner:
    """Union of ``tree_fn(g, u)`` over all nodes — the Algorithm 3 assembly."""
    # One CSR snapshot serves every per-node tree construction below: the
    # BFS calls inside tree_fn (bfs_parents / bfs_layers) detect the fresh
    # snapshot and run on flat arrays instead of per-node set scans.
    g.freeze()
    trees: dict[int, DomTree] = {}
    h = Graph(g.num_nodes)
    for u in g.nodes():
        t = tree_fn(g, u)
        trees[u] = t
        for a, b in t.edges():
            h.add_edge(a, b)
    return RemoteSpanner(graph=h, trees=trees, guarantee=guarantee, method=method)


def build_remote_spanner(
    g: Graph, epsilon: float, method: str = "mis"
) -> RemoteSpanner:
    """Theorem 1: a ``(1+ε, 1−2ε)``-remote-spanner for any ``0 < ε ≤ 1``.

    ``method="mis"`` uses Algorithm 2 (``O(ε^{-(p+1)} n)`` edges on unit
    ball graphs of doubling dimension p, no log Δ factor); ``"greedy"``
    uses Algorithm 1 (near-optimal per-tree size on arbitrary graphs).
    The recorded guarantee uses the *effective* ε' = 1/(r−1) ≤ ε that the
    radius actually certifies.
    """
    r = epsilon_to_radius(epsilon)
    eps_eff = effective_epsilon(r)
    guarantee = StretchGuarantee(alpha=1.0 + eps_eff, beta=1.0 - 2.0 * eps_eff, k=1)
    if method == "mis":
        fn = lambda graph, u: dom_tree_mis(graph, u, r)  # noqa: E731
    elif method == "greedy":
        fn = lambda graph, u: dom_tree_greedy(graph, u, r, 1)  # noqa: E731
    else:
        raise ParameterError(f"unknown method {method!r} (want 'mis' or 'greedy')")
    return build_from_trees(g, fn, guarantee, method=f"{method}(r={r}, beta=1)")


def build_k_connecting_spanner(g: Graph, k: int = 1) -> RemoteSpanner:
    """Theorem 2: a k-connecting ``(1, 0)``-remote-spanner.

    Union of Algorithm 4's k-coverage MPR stars; size within
    ``2(1 + log Δ)`` of the optimal k-connecting (1, 0)-remote-spanner.
    ``k = 1`` preserves exact distances (a (1, 0)-remote-spanner — the
    object a (1, 0)-*spanner* can never be sparse for).
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    guarantee = StretchGuarantee(alpha=1.0, beta=0.0, k=k)
    return build_from_trees(
        g, lambda graph, u: dom_tree_kcover(graph, u, k), guarantee, method=f"kcover(k={k})"
    )


def build_biconnecting_spanner(g: Graph) -> RemoteSpanner:
    """Theorem 3: a 2-connecting ``(2, −1)``-remote-spanner.

    Union of Algorithm 5's 2-connecting (2, 1)-dominating trees
    (Proposition 4 supplies the stretch; Proposition 7 the O(n) size on
    doubling unit ball graphs).
    """
    guarantee = StretchGuarantee(alpha=2.0, beta=-1.0, k=2)
    return build_from_trees(
        g, lambda graph, u: dom_tree_kmis(graph, u, 2), guarantee, method="kmis(k=2)"
    )
