"""Algorithm 2 — ``DomTreeMIS_{r,1}(u)``: MIS-based (r, 1)-dominating trees.

Instead of set-cover greedy (whose size guarantee carries a ``log Δ``
factor), Algorithm 2 dominates ``B_G(u, r) \\ B_G(u, 1)`` with a greedily
grown *maximal independent set*, picked closest-to-the-root first.

Guarantee (Proposition 3): always an (r, 1)-dominating tree; when the input
is the unit ball graph of a metric with doubling dimension *p* the tree has
``O(r^{p+1})`` edges — because the selected nodes are pairwise non-adjacent,
hence pairwise > 1 apart in the metric, and a radius-r metric ball packs at
most ``(4r)^p`` such points.  This is the construction behind Theorem 1's
``O(ε^{−(p+1)} n)`` total edge bound.

Nearest-first ordering matters: it guarantees each dominated node *v* at
distance r' is covered by an MIS member *x* with ``d_G(u, x) ≤ r'`` (so
``d_T(u, x) ≤ r' ≤ r' − 1 + β`` with β = 1), or joins the tree itself with
its parent at depth r' − 1.  Ties within a distance class break on node id
for determinism.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..graph import Graph
from ..graph.traversal import bfs_layers, bfs_parents, path_to_root
from .domtree import DomTree

__all__ = ["dom_tree_mis"]


def dom_tree_mis(g: Graph, u: int, r: int) -> DomTree:
    """Compute an (r, 1)-dominating tree for *u* via a greedy MIS (Algorithm 2)."""
    if r < 2:
        raise ParameterError(f"r must be ≥ 2, got {r}")
    dist, parent = bfs_parents(g, u, cutoff=r)
    layers = bfs_layers(g, u, cutoff=r)

    tree = DomTree(root=u)
    # B := B_G(u, r) \ B_G(u, 1), visited nearest-first; bfs_layers already
    # yields nodes grouped by distance, so iterating layer by layer (ids
    # ascending within a layer) realizes "pick x ∈ B at minimal distance".
    remaining: set[int] = set()
    for r_prime in range(2, min(r, len(layers) - 1) + 1):
        remaining.update(layers[r_prime])
    for r_prime in range(2, min(r, len(layers) - 1) + 1):
        for x in sorted(layers[r_prime]):
            if x not in remaining:
                continue
            tree.add_root_path(list(reversed(path_to_root(parent, x))))
            remaining -= g.neighbors(x)
            remaining.discard(x)
    assert not remaining, "nearest-first MIS sweep must exhaust the ball"
    del dist
    return tree
