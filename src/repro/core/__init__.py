"""The paper's primary contribution: remote-spanners and dominating trees.

Public surface:

* dominating trees — :class:`DomTree`, the four constructions
  (Algorithms 1, 2, 4, 5) and the definition-level predicates;
* remote-spanner builders — Theorems 1, 2, 3 (:func:`build_remote_spanner`,
  :func:`build_k_connecting_spanner`, :func:`build_biconnecting_spanner`);
* stretch verification — exact checkers for the (α, β) and k-connecting
  remote-spanner conditions;
* characterizations — executable Propositions 1 and 5;
* exact optima — the OPT side of the approximation guarantees.
"""

from .domtree import (
    DomTree,
    dominating_tree_violations,
    induces_dominating_trees,
    induces_k_connecting_star_trees,
    is_dominating_tree,
    is_k_connecting_dominating_tree,
    k_connecting_violations,
)
from .domtree_greedy import dom_tree_greedy
from .domtree_mis import dom_tree_mis
from .domtree_kcover import dom_tree_kcover, mpr_set
from .domtree_kmis import dom_tree_kmis
from .remote_spanner import (
    RemoteSpanner,
    StretchGuarantee,
    build_biconnecting_spanner,
    build_from_trees,
    build_k_connecting_spanner,
    build_remote_spanner,
    effective_epsilon,
    epsilon_to_radius,
)
from .stretch import (
    KConnectingStats,
    RemoteStretchStats,
    is_k_connecting_remote_spanner,
    is_remote_spanner,
    k_connecting_stretch_stats,
    k_connecting_violations_spanner,
    remote_spanner_violations,
    remote_stretch_stats,
)
from .characterization import (
    proposition1_holds,
    proposition1_sides,
    proposition5_holds,
    proposition5_sides,
)
from .optimal import (
    k_connecting_spanner_lower_bound,
    optimal_dom_tree_edges,
    optimal_kconnecting_star_size,
)
from .translation import (
    RemoteAdvantage,
    check_translation_lemma,
    is_spanner,
    remote_advantage,
    spanner_violations,
    translated_guarantee,
)
from . import extensions

__all__ = [
    "DomTree",
    "dominating_tree_violations",
    "induces_dominating_trees",
    "induces_k_connecting_star_trees",
    "is_dominating_tree",
    "is_k_connecting_dominating_tree",
    "k_connecting_violations",
    "dom_tree_greedy",
    "dom_tree_mis",
    "dom_tree_kcover",
    "mpr_set",
    "dom_tree_kmis",
    "RemoteSpanner",
    "StretchGuarantee",
    "build_biconnecting_spanner",
    "build_from_trees",
    "build_k_connecting_spanner",
    "build_remote_spanner",
    "effective_epsilon",
    "epsilon_to_radius",
    "KConnectingStats",
    "RemoteStretchStats",
    "is_k_connecting_remote_spanner",
    "is_remote_spanner",
    "k_connecting_stretch_stats",
    "k_connecting_violations_spanner",
    "remote_spanner_violations",
    "remote_stretch_stats",
    "proposition1_holds",
    "proposition1_sides",
    "proposition5_holds",
    "proposition5_sides",
    "k_connecting_spanner_lower_bound",
    "optimal_dom_tree_edges",
    "optimal_kconnecting_star_size",
    "RemoteAdvantage",
    "check_translation_lemma",
    "is_spanner",
    "remote_advantage",
    "spanner_violations",
    "translated_guarantee",
    "extensions",
]
