"""Algorithm 1 — ``DomTreeGdy_{r,β}(u)``: greedy set-cover dominating trees.

The paper (§2.2): for each radius ``r' = 2 .. r``, cover the ring
``S = B_G(u, r') \\ B_G(u, r'-1)`` greedily with closed neighborhoods of
candidate nodes ``X = B_G(u, r'-1+β) \\ B_G(u, r'-2)``, adding to the tree
a shortest path from *u* to each picked candidate.

Guarantee (Proposition 2): the tree has at most
``(1+β)(r+β−1)(1+log Δ)`` times the edges of an optimal (r, β)-dominating
tree for *u*.

Implementation notes
--------------------
* Shortest paths are taken along one fixed BFS parent forest of *u*, so the
  union of added paths is automatically a tree (``DomTree.add_root_path``).
* The greedy gain uses *closed* balls ``B_G(x, 1)`` exactly as the
  pseudo-code does — with β ≥ 1 a candidate can itself lie in the ring it
  is covering.
* Tie-breaking is by smallest node id, making runs deterministic (the
  distributed protocol relies on every node computing identical trees from
  identical local views).
* Locality: only ``B_G(u, max(r, r-1+β))`` is ever touched, matching the
  information radius Algorithm 3 floods.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..graph import Graph
from ..graph.traversal import bfs_layers, bfs_parents, path_to_root
from .domtree import DomTree

__all__ = ["dom_tree_greedy"]


def dom_tree_greedy(g: Graph, u: int, r: int, beta: int) -> DomTree:
    """Compute an (r, β)-dominating tree for *u* greedily (Algorithm 1).

    Parameters
    ----------
    g:
        Input graph.
    u:
        Root node.
    r:
        Domination radius, ``r ≥ 2``.
    beta:
        Additive slack ``β ≥ 0`` (the paper uses β ∈ {0, 1}).
    """
    if r < 2:
        raise ParameterError(f"r must be ≥ 2, got {r}")
    if beta < 0:
        raise ParameterError(f"β must be ≥ 0, got {beta}")
    horizon = max(r, r - 1 + beta)
    dist, parent = bfs_parents(g, u, cutoff=horizon)
    layers = bfs_layers(g, u, cutoff=horizon)

    tree = DomTree(root=u)
    for r_prime in range(2, r + 1):
        if len(layers) <= r_prime:
            break  # graph exhausted before radius r
        s_set = set(layers[r_prime])
        lo, hi = r_prime - 1, r_prime - 1 + beta
        candidates = sorted(
            x for x in range(g.num_nodes) if lo <= dist[x] <= hi and dist[x] != -1
        )
        picked: set[int] = set()
        while s_set:
            best_x = -1
            best_gain = 0
            for x in candidates:
                if x in picked:
                    continue
                gain = len(g.neighbors(x) & s_set) + (1 if x in s_set else 0)
                if gain > best_gain:
                    best_gain = gain
                    best_x = x
            if best_x < 0:
                # Cannot happen on consistent inputs: any v ∈ S has its BFS
                # parent in X covering it.  Guard for corrupted graphs.
                raise ParameterError(
                    f"ring at distance {r_prime} from {u} not coverable — "
                    "graph mutated during construction?"
                )
            picked.add(best_x)
            tree.add_root_path(list(reversed(path_to_root(parent, best_x))))
            s_set -= g.neighbors(best_x)
            s_set.discard(best_x)
    return tree
