"""Executable forms of the paper's characterization theorems.

The load-bearing theory of the paper is two "iff" statements:

* **Proposition 1** — H is a ``(1+ε, 1−2ε)``-remote-spanner **iff** H
  induces ``(⌈1/ε⌉+1, 1)``-dominating trees;
* **Proposition 5** — H is a k-connecting ``(1, 0)``-remote-spanner **iff**
  H induces k-connecting ``(2, 0)``-dominating trees.

Both sides of both equivalences are decidable with the machinery in this
package, which turns the propositions into *testable properties*: the
hypothesis suites draw random sub-graphs H of random graphs G and assert
the two sides agree.  These checks validate simultaneously the paper's
mathematics and this library's four independent implementations
(BFS stretch checking, flow-based d^k, induced-tree distance tests, and
the star characterization).
"""

from __future__ import annotations

from ..errors import ParameterError
from ..graph import Graph
from .domtree import induces_dominating_trees, induces_k_connecting_star_trees
from .remote_spanner import effective_epsilon, epsilon_to_radius
from .stretch import is_k_connecting_remote_spanner, is_remote_spanner

__all__ = [
    "proposition1_sides",
    "proposition1_holds",
    "proposition5_sides",
    "proposition5_holds",
]


def proposition1_sides(h: Graph, g: Graph, epsilon: float) -> "tuple[bool, bool]":
    """Evaluate both sides of Proposition 1 for the sub-graph H.

    Returns ``(is_remote_spanner, induces_trees)`` where the first checks
    the ``(1+ε', 1−2ε')`` stretch directly (ε' = 1/(r−1), the value the
    proposition actually ties to radius r — using the requested ε would
    make the equivalence one-directional for non-reciprocal ε) and the
    second checks the (r, 1)-dominating-tree condition.
    """
    r = epsilon_to_radius(epsilon)
    eps = effective_epsilon(r)
    lhs = is_remote_spanner(h, g, 1.0 + eps, 1.0 - 2.0 * eps)
    rhs = induces_dominating_trees(h, g, r, 1)
    return lhs, rhs


def proposition1_holds(h: Graph, g: Graph, epsilon: float) -> bool:
    """Whether the two sides of Proposition 1 agree on this (H, G) pair."""
    lhs, rhs = proposition1_sides(h, g, epsilon)
    return lhs == rhs


def proposition5_sides(h: Graph, g: Graph, k: int) -> "tuple[bool, bool]":
    """Evaluate both sides of Proposition 5.

    Returns ``(is_k_connecting_10_remote_spanner, induces_star_trees)``.
    The left side is flow-based (exact d^k comparisons over every
    nonadjacent pair), the right side the per-node star condition.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    lhs = is_k_connecting_remote_spanner(h, g, k, 1.0, 0.0)
    rhs = induces_k_connecting_star_trees(h, g, k)
    return lhs, rhs


def proposition5_holds(h: Graph, g: Graph, k: int) -> bool:
    """Whether the two sides of Proposition 5 agree on this (H, G) pair."""
    lhs, rhs = proposition5_sides(h, g, k)
    return lhs == rhs
