"""Algorithm 5 — ``DomTreeMIS_{2,1,k}(u)``: k-connecting (2, 1)-dominating trees.

Dominates the distance-2 ring of *u* with *k rounds* of greedily grown
maximal independent sets.  Each picked ring node *x* is attached to the
tree through a fresh common neighbor ``y1`` (path ``u–y1–x``) and up to
``k−1`` further fresh common neighbors get direct spokes ``u–y_i`` — every
pick therefore opens new *branches*, and branch-distinctness is what makes
the tree paths internally disjoint.

Guarantee (Proposition 7): the result is a k-connecting (2, 1)-dominating
tree; on the unit ball graph of a doubling metric it has ``O(k²)`` edges
(each round's MIS has O(1) size, each pick adds ≤ k+1 edges).  Combined
with Proposition 4 this yields Theorem 3's linear-size 2-connecting
(2, −1)-remote-spanners.

Deviations from the paper's pseudo-code (documented in DESIGN.md §4):

1. **`S ∩ X` can empty while both sets are non-empty** (X loses balls of
   picked nodes, S loses dominated nodes — the losses are different).  The
   pseudo-code's ``Pick x ∈ S ∩ X`` is then impossible; we end the round,
   which preserves the proof's invariant (M is maximal independent in
   ``M ∪ S`` — every surviving S-node lost its X-membership to a picked
   ball, hence is adjacent to M).
2. **Re-picked ring nodes keep their original parent.**  A node *x* picked
   in round 1 with fewer than k fresh common neighbors stays in S and may
   be picked again in a later round (X resets to S each round).  Adding the
   ``u–y1–x`` path again would give *x* two parents; instead later picks
   add only the fresh spokes ``u–y_i``, which is all the domination
   argument uses (the y_i are new branches adjacent to x).
3. The paper's inner ``k′ := min{...}`` reuses the loop variable name —
   an obvious typo; we call it ``k_fresh``.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..graph import Graph
from ..graph.traversal import bfs_layers
from .domtree import DomTree

__all__ = ["dom_tree_kmis"]


def dom_tree_kmis(g: Graph, u: int, k: int) -> DomTree:
    """Compute a k-connecting (2, 1)-dominating tree for *u* (Algorithm 5)."""
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    layers = bfs_layers(g, u, cutoff=2)
    two_ring = set(layers[2]) if len(layers) > 2 else set()
    nu = g.neighbors(u)

    tree = DomTree(root=u)
    s_set = set(two_ring)

    def prune_dominated(current: set[int]) -> set[int]:
        """Apply the S-removal test: drop v when all its common neighbors
        are in V(T), or v has k disjoint tree paths of length ≤ 2 to its
        neighbors (k distinct branches)."""
        nodes = tree.nodes()
        depths = tree.depths()
        branch_of = {
            x: tree.branch(x) for x, d in depths.items() if 1 <= d <= 2
        }
        survivors: set[int] = set()
        for v in current:
            if g.neighbors(v) & nu <= nodes:
                continue
            branches = {branch_of[x] for x in g.neighbors(v) if x in branch_of}
            if len(branches) >= k:
                continue
            survivors.add(v)
        return survivors

    for _round in range(k):
        if not s_set:
            break
        x_set = set(s_set)  # X := S
        while x_set and s_set:
            eligible = s_set & x_set
            if not eligible:
                break  # deviation 1: round over, M maximal in M ∪ S
            x = min(eligible)
            fresh = sorted((g.neighbors(x) & nu) - tree.nodes())
            # x ∈ S guarantees fresh ≠ ∅ unless x is already in the tree
            # (re-pick, deviation 2) — then fresh may legitimately be empty.
            k_fresh = min(k, len(fresh))
            ys = fresh[:k_fresh]
            if x not in tree.nodes():
                if not ys:  # pragma: no cover — excluded by the S-update
                    raise ParameterError(
                        f"ring node {x} has no fresh common neighbor; "
                        "inconsistent S bookkeeping"
                    )
                tree.add_root_path([u, ys[0], x])
                spokes = ys[1:]
            else:
                spokes = ys
            for y in spokes:
                tree.add_root_path([u, y])
            s_set = prune_dominated(s_set)
            x_set -= g.neighbors(x)
            x_set.discard(x)
    return tree
