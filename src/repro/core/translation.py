"""The §1.2 translation lemma: regular spanners ARE remote-spanners.

Paper: "One can easily see that any (α, β)-spanner is also an
(α, β)-remote-spanner and even an (α, β−α+1)-remote-spanner for α ≥ 1
(simply consider the spanner stretch from u′ to v where u′ is the first
node on a shortest path from u to v in G)."

This module makes the lemma executable in both directions:

* :func:`is_spanner` — the plain (α, β)-*spanner* predicate (no
  augmentation), used by the baselines' tests and the translation checks;
* :func:`translated_guarantee` — the (α, β) → (α, β−α+1) bookkeeping;
* :func:`check_translation_lemma` — for a given spanner H of G, verify
  that it indeed satisfies the improved remote-spanner stretch (the
  property-test suite runs this over every baseline spanner family);
* :func:`remote_advantage` — how much better the remote-spanner condition
  is than the plain one on a given H: the per-pair savings
  d_H(u,v) − d_{H_u}(u,v), aggregated.  This quantifies the "neighbors are
  free" gain that motivates the whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NotASubgraphError, ParameterError
from ..graph import AugmentedView, Graph, batched_bfs
from .remote_spanner import StretchGuarantee

__all__ = [
    "is_spanner",
    "spanner_violations",
    "translated_guarantee",
    "check_translation_lemma",
    "RemoteAdvantage",
    "remote_advantage",
]


def spanner_violations(h: Graph, g: Graph, alpha: float, beta: float) -> list:
    """Pairs violating the plain spanner condition d_H ≤ α·d_G + β."""
    if not h.is_spanning_subgraph_of(g):
        raise NotASubgraphError("H must be a spanning sub-graph of G")
    bad = []
    for (u, dg), (_u2, dh) in zip(batched_bfs(g), batched_bfs(h)):
        for v in g.nodes():
            if v <= u or dg[v] < 1:
                continue
            d_h = dh[v] if dh[v] >= 0 else float("inf")
            if d_h > alpha * dg[v] + beta + 1e-9:
                bad.append((u, v, dg[v], d_h))
    return bad


def is_spanner(h: Graph, g: Graph, alpha: float, beta: float) -> bool:
    """Whether H is a plain (α, β)-spanner of G."""
    return not spanner_violations(h, g, alpha, beta)


def translated_guarantee(alpha: float, beta: float) -> StretchGuarantee:
    """The remote-spanner stretch an (α, β)-spanner earns: (α, β−α+1).

    Proof sketch from the paper: for nonadjacent u, v let u′ be the first
    node of a shortest u-v path; then
    ``d_{H_u}(u, v) ≤ 1 + d_H(u′, v) ≤ 1 + α(d_G(u,v) − 1) + β``.
    Requires α ≥ 1.
    """
    if alpha < 1.0:
        raise ParameterError(f"translation needs α ≥ 1, got {alpha}")
    return StretchGuarantee(alpha=alpha, beta=beta - alpha + 1.0, k=1)


def check_translation_lemma(h: Graph, g: Graph, alpha: float, beta: float) -> bool:
    """Verify the lemma on a concrete (H, G): if H is an (α, β)-spanner
    then H satisfies the translated remote stretch (α, β−α+1).

    Returns ``True`` when either H is not an (α, β)-spanner (lemma
    vacuous) or the translated remote condition holds.
    """
    from .stretch import is_remote_spanner

    if not is_spanner(h, g, alpha, beta):
        return True
    guar = translated_guarantee(alpha, beta)
    return is_remote_spanner(h, g, guar.alpha, guar.beta)


@dataclass
class RemoteAdvantage:
    """Aggregate of d_H(u,v) − d_{H_u}(u,v) over ordered nonadjacent pairs."""

    pairs: int = 0
    improved_pairs: int = 0  # augmentation strictly helped
    total_savings: int = 0  # sum of (d_H − d_{H_u}) over reachable pairs
    max_savings: int = 0
    rescued_pairs: int = 0  # unreachable in H but reachable in H_u

    @property
    def mean_savings(self) -> float:
        return self.total_savings / self.pairs if self.pairs else 0.0


def remote_advantage(h: Graph, g: Graph) -> RemoteAdvantage:
    """Measure how much the 'neighbors are free' augmentation buys on H.

    This is the paper's motivation quantified: the same advertised graph H
    serves strictly shorter routes when each source grafts its own links.
    """
    if not h.is_spanning_subgraph_of(g):
        raise NotASubgraphError("H must be a spanning sub-graph of G")
    adv = RemoteAdvantage()
    for (u, dg), (_u2, dh) in zip(batched_bfs(g), batched_bfs(h)):
        dhu = AugmentedView(h, g, u).distances_from(u)
        for v in g.nodes():
            if v == u or dg[v] < 2:
                continue
            adv.pairs += 1
            if dh[v] < 0 and dhu[v] >= 0:
                adv.rescued_pairs += 1
                adv.improved_pairs += 1
                continue
            if dh[v] >= 0 and dhu[v] >= 0:
                saving = dh[v] - dhu[v]
                if saving > 0:
                    adv.improved_pairs += 1
                    adv.total_savings += saving
                    adv.max_savings = max(adv.max_savings, saving)
    return adv
