"""Geometric substrate: point processes, metrics, unit ball graphs, nets.

Provides the input models of the paper's theorems — random unit disk graphs
(Poisson process in a square, Th. 2) and unit ball graphs of doubling
metrics (Th. 1/3) — plus the net/packing machinery their proofs lean on.
"""

from .points import grid_points, perturbed_grid_points, poisson_points, uniform_points
from .metrics import ChebyshevMetric, EuclideanMetric, Metric, SnowflakeMetric, TorusMetric
from .unit_ball import brute_force_unit_ball_graph, unit_ball_graph, unit_disk_graph
from .doubling import (
    ball_cover_count,
    estimate_doubling_dimension,
    greedy_net,
    packing_number,
)

__all__ = [
    "grid_points",
    "perturbed_grid_points",
    "poisson_points",
    "uniform_points",
    "ChebyshevMetric",
    "EuclideanMetric",
    "Metric",
    "SnowflakeMetric",
    "TorusMetric",
    "brute_force_unit_ball_graph",
    "unit_ball_graph",
    "unit_disk_graph",
    "ball_cover_count",
    "estimate_doubling_dimension",
    "greedy_net",
    "packing_number",
]
