"""Point processes for the geometric graph models of the paper.

Theorem 2 is stated for "the unit disk graph of a uniform Poisson
distribution in a fixed square"; Theorems 1 and 3 for unit ball graphs of a
doubling metric.  This module provides the node-placement half of those
models:

* :func:`poisson_points` — homogeneous Poisson process of intensity λ on an
  ``[0, side]²`` square (the paper's model; the *number* of points is
  Poisson(λ·side²), their positions i.i.d. uniform);
* :func:`uniform_points` — exactly *n* i.i.d. uniform points (binomial
  process), the conditioned variant used when a sweep wants deterministic n;
* :func:`grid_points` / :func:`perturbed_grid_points` — structured layouts
  for reproducible worked examples (Figure 1).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng

__all__ = [
    "poisson_points",
    "uniform_points",
    "grid_points",
    "perturbed_grid_points",
]


def poisson_points(
    intensity: float,
    side: float,
    dim: int = 2,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Homogeneous Poisson point process on ``[0, side]^dim``.

    Returns an ``(N, dim)`` float64 array with ``N ~ Poisson(intensity *
    side**dim)``.  This is exactly the node model of Theorem 2.
    """
    if intensity < 0 or side <= 0 or dim < 1:
        raise ParameterError(
            f"need intensity ≥ 0, side > 0, dim ≥ 1; got {intensity}, {side}, {dim}"
        )
    rng = ensure_rng(seed)
    n = int(rng.poisson(intensity * side**dim))
    return rng.random((n, dim)) * side


def uniform_points(
    n: int,
    side: float,
    dim: int = 2,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Exactly *n* i.i.d. uniform points on ``[0, side]^dim``."""
    if n < 0 or side <= 0 or dim < 1:
        raise ParameterError(f"need n ≥ 0, side > 0, dim ≥ 1; got {n}, {side}, {dim}")
    rng = ensure_rng(seed)
    return rng.random((n, dim)) * side


def grid_points(rows: int, cols: int, spacing: float = 1.0) -> np.ndarray:
    """Regular ``rows × cols`` lattice with the given spacing."""
    if rows < 1 or cols < 1 or spacing <= 0:
        raise ParameterError(f"bad grid parameters ({rows}, {cols}, {spacing})")
    ys, xs = np.mgrid[0:rows, 0:cols]
    return np.column_stack([xs.ravel() * spacing, ys.ravel() * spacing]).astype(float)


def perturbed_grid_points(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    jitter: float = 0.25,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Lattice points plus uniform jitter in ``[-jitter, jitter]²``.

    A cheap doubling-dimension-2 layout with controllable irregularity; used
    for the worked examples where pure Poisson placement is too messy to
    draw but a pure lattice too degenerate (ties everywhere).
    """
    rng = ensure_rng(seed)
    pts = grid_points(rows, cols, spacing)
    pts += rng.uniform(-jitter, jitter, size=pts.shape)
    return pts
