"""Unit disk / unit ball graph construction.

Two builders with identical output:

* :func:`unit_disk_graph` — Euclidean points with a *cell-grid* neighbor
  search: hash points into square cells of side = radius, compare only
  points in the 3×3 (or 3^d) neighborhood.  Expected O(n + m) on Poisson
  inputs, which is what lets the n-sweeps reach thousands of nodes.
* :func:`unit_ball_graph` — any :class:`~repro.geometry.metrics.Metric`,
  O(n²) vectorized distance rows.  The generality hook for torus/snowflake
  metrics.

Both return plain :class:`~repro.graph.Graph` objects; the geometry is
deliberately *not* attached to the graph — per the paper (§1.2) the
algorithms must work from the topology alone.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from .metrics import EuclideanMetric, Metric

__all__ = ["unit_disk_graph", "unit_ball_graph", "brute_force_unit_ball_graph"]


def unit_disk_graph(points: np.ndarray, radius: float = 1.0) -> Graph:
    """Unit disk graph: edge uv iff Euclidean ``|p_u - p_v| ≤ radius``.

    Cell-grid construction.  Matches :func:`brute_force_unit_ball_graph`
    with a Euclidean metric exactly (the property-test suite checks this).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ParameterError(f"points must be (n, dim), got shape {points.shape}")
    if radius <= 0:
        raise ParameterError(f"radius must be > 0, got {radius}")
    n, dim = points.shape
    g = Graph(n)
    if n < 2:
        return g

    # Bucket points into cells of side `radius`; any edge spans cells whose
    # integer coordinates differ by at most 1 in every axis.
    cells: dict[tuple, list[int]] = defaultdict(list)
    cell_ids = np.floor(points / radius).astype(np.int64)
    for i in range(n):
        cells[tuple(cell_ids[i])].append(i)

    r2 = radius * radius
    offsets = _neighbor_offsets(dim)
    for cell, members in cells.items():
        # Within-cell pairs.
        for a_idx in range(len(members)):
            i = members[a_idx]
            pi = points[i]
            for b_idx in range(a_idx + 1, len(members)):
                j = members[b_idx]
                d = points[j] - pi
                if float(d @ d) <= r2:
                    g.add_edge(i, j)
        # Cross-cell pairs: visit each unordered cell pair once by only
        # looking at lexicographically larger neighbor cells.
        for off in offsets:
            other = tuple(c + o for c, o in zip(cell, off))
            if other not in cells:
                continue
            for i in members:
                pi = points[i]
                for j in cells[other]:
                    d = points[j] - pi
                    if float(d @ d) <= r2:
                        g.add_edge(i, j)
    return g


def _neighbor_offsets(dim: int) -> list[tuple]:
    """Half of the 3^dim - 1 neighbor offsets (lexicographically positive)."""
    offsets: list[tuple] = []

    def rec(prefix: list[int]) -> None:
        if len(prefix) == dim:
            tup = tuple(prefix)
            if any(x != 0 for x in tup) and tup > tuple([0] * dim):
                offsets.append(tup)
            return
        for delta in (-1, 0, 1):
            rec(prefix + [delta])

    rec([])
    return offsets


def unit_ball_graph(points: np.ndarray, metric: "Metric | None" = None, radius: float = 1.0) -> Graph:
    """Unit ball graph of an arbitrary metric: edge uv iff ``e(u,v) ≤ radius``.

    O(n²) with vectorized per-row distances; use :func:`unit_disk_graph` for
    large Euclidean instances.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ParameterError(f"points must be (n, dim), got shape {points.shape}")
    if radius <= 0:
        raise ParameterError(f"radius must be > 0, got {radius}")
    metric = metric if metric is not None else EuclideanMetric(points.shape[1])
    n = points.shape[0]
    g = Graph(n)
    for i in range(n):
        row = metric.to_all(points, i)
        for j in np.nonzero(row[i + 1 :] <= radius)[0]:
            g.add_edge(i, int(i + 1 + j))
    return g


def brute_force_unit_ball_graph(
    points: np.ndarray, metric: "Metric | None" = None, radius: float = 1.0
) -> Graph:
    """Reference O(n²) scalar implementation for cross-validation in tests."""
    points = np.asarray(points, dtype=float)
    metric = metric if metric is not None else EuclideanMetric(points.shape[1])
    n = points.shape[0]
    g = Graph(n)
    for i in range(n):
        for j in range(i + 1, n):
            if metric.distance(points, i, j) <= radius:
                g.add_edge(i, j)
    return g
