"""Doubling-dimension machinery: nets, packings, and empirical estimation.

The edge bounds of Theorems 1 and 3 are parameterized by the doubling
dimension *p* of the underlying metric (every radius-R ball coverable by
``2**p`` balls of radius R/2).  Two uses in this repo:

* **Proof ingredient made executable** — Proposition 3's argument is "a MIS
  of a radius-r ball has ≤ (4r)^p points because a (1/2)-net covers it".
  :func:`greedy_net` and :func:`packing_number` let tests check those
  packing facts directly on the generated point sets.
* **Experiment instrumentation** — :func:`estimate_doubling_dimension`
  measures the effective *p* of a sample so the ε-sweep can report the
  exponent it *should* see next to the one it measured.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng
from .metrics import Metric

__all__ = [
    "greedy_net",
    "packing_number",
    "ball_cover_count",
    "estimate_doubling_dimension",
]


def greedy_net(points: np.ndarray, metric: Metric, radius: float) -> list[int]:
    """Greedy *radius*-net: a maximal subset with pairwise distance > radius.

    Returned indices form both an r-packing and an r-cover of the input
    (the standard net duality).  Greedy order is by index, so the result is
    deterministic.
    """
    if radius <= 0:
        raise ParameterError(f"radius must be > 0, got {radius}")
    n = points.shape[0]
    centers: list[int] = []
    covered = np.zeros(n, dtype=bool)
    for i in range(n):
        if not covered[i]:
            centers.append(i)
            covered |= metric.to_all(points, i) <= radius
    return centers


def packing_number(points: np.ndarray, metric: Metric, radius: float) -> int:
    """Size of the greedy maximal radius-separated packing."""
    return len(greedy_net(points, metric, radius))


def ball_cover_count(
    points: np.ndarray, metric: Metric, center: int, big_radius: float
) -> int:
    """How many (big_radius/2)-balls the greedy net uses to cover B(center, big_radius).

    The doubling definition bounds this by ``2**p``; measuring it on samples
    gives an empirical lower bound on the effective doubling dimension.
    """
    inside = np.nonzero(metric.to_all(points, center) <= big_radius)[0]
    if inside.size == 0:
        return 0
    sub = points[inside]
    return len(greedy_net(sub, metric, big_radius / 2.0))


def estimate_doubling_dimension(
    points: np.ndarray,
    metric: Metric,
    samples: int = 32,
    radii: "tuple[float, ...] | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Empirical doubling dimension: ``max log2(cover count)`` over samples.

    Samples random centers and radii, covers each ball with half-radius net
    balls, and returns the base-2 log of the worst cover size observed.
    This is a lower bound on the true doubling dimension that converges
    quickly for the homogeneous point sets used here.
    """
    n = points.shape[0]
    if n == 0:
        return 0.0
    rng = ensure_rng(seed)
    if radii is None:
        # Spread radii across the metric's scale range.
        full = metric.to_all(points, 0)
        top = float(full.max()) or 1.0
        radii = (top / 8, top / 4, top / 2, top)
    worst = 1
    for _ in range(samples):
        center = int(rng.integers(n))
        radius = float(radii[int(rng.integers(len(radii)))])
        if radius <= 0:
            continue
        worst = max(worst, ball_cover_count(points, metric, center, radius))
    return float(np.log2(worst))
