"""Metrics underlying unit ball graphs.

A *unit ball graph* (UBG) of a metric *e* connects u and v iff
``e(u, v) ≤ 1`` (paper §2.1).  The paper's edge-count theorems hold whenever
*e* has constant doubling dimension *p* — every radius-R ball is coverable
by ``2**p`` balls of radius R/2.  The metrics here cover the regimes the
experiments need:

* :class:`EuclideanMetric` (p = d for points in R^d; the unit *disk* graph
  is the d=2 case);
* :class:`ChebyshevMetric` (L∞; also doubling, different ball geometry —
  exercises that nothing secretly assumes rotational symmetry);
* :class:`TorusMetric` (wrap-around Euclidean; removes boundary effects in
  scaling experiments);
* :class:`SnowflakeMetric` (e^γ for 0<γ<1 of a base metric; doubling with a
  *different* dimension p/γ — stresses the ε^{-(p+1)} edge bound's
  p-dependence).

Crucially, per §1.2 the algorithms never see these distances — the input is
the graph alone ("distances in the underlying metric are unknown").  The
metric objects exist only to *build* inputs and to *measure* properties in
experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ParameterError

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ChebyshevMetric",
    "TorusMetric",
    "SnowflakeMetric",
]


class Metric(ABC):
    """A metric on point arrays of shape ``(n, dim)``."""

    @abstractmethod
    def pairwise(self, points: np.ndarray) -> np.ndarray:
        """Full ``(n, n)`` distance matrix."""

    @abstractmethod
    def to_all(self, points: np.ndarray, i: int) -> np.ndarray:
        """Distances from point *i* to all points (length-n vector)."""

    def distance(self, points: np.ndarray, i: int, j: int) -> float:
        """Distance between points *i* and *j*."""
        return float(self.to_all(points, i)[j])

    @property
    def doubling_dimension_hint(self) -> "float | None":
        """Analytical doubling dimension if known, else ``None``."""
        return None


class EuclideanMetric(Metric):
    """Standard L2 metric on R^dim; doubling dimension ≈ dim."""

    def __init__(self, dim: int = 2) -> None:
        if dim < 1:
            raise ParameterError(f"dim must be ≥ 1, got {dim}")
        self.dim = dim

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        diff = points[:, None, :] - points[None, :, :]
        return np.sqrt((diff * diff).sum(axis=-1))

    def to_all(self, points: np.ndarray, i: int) -> np.ndarray:
        diff = points - points[i]
        return np.sqrt((diff * diff).sum(axis=-1))

    @property
    def doubling_dimension_hint(self) -> float:
        return float(self.dim)


class ChebyshevMetric(Metric):
    """L∞ metric; unit balls are axis-aligned cubes.  Doubling dim ≈ dim."""

    def __init__(self, dim: int = 2) -> None:
        if dim < 1:
            raise ParameterError(f"dim must be ≥ 1, got {dim}")
        self.dim = dim

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        diff = np.abs(points[:, None, :] - points[None, :, :])
        return diff.max(axis=-1)

    def to_all(self, points: np.ndarray, i: int) -> np.ndarray:
        return np.abs(points - points[i]).max(axis=-1)

    @property
    def doubling_dimension_hint(self) -> float:
        return float(self.dim)


class TorusMetric(Metric):
    """Euclidean metric on a flat torus of the given side length.

    Coordinates are taken modulo *side* in each axis; distance uses the
    shorter way around.  Removes boundary effects so edge-density scaling
    laws show clean exponents.
    """

    def __init__(self, side: float, dim: int = 2) -> None:
        if side <= 0 or dim < 1:
            raise ParameterError(f"need side > 0, dim ≥ 1; got {side}, {dim}")
        self.side = float(side)
        self.dim = dim

    def _wrap(self, diff: np.ndarray) -> np.ndarray:
        diff = np.abs(diff) % self.side
        return np.minimum(diff, self.side - diff)

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        diff = self._wrap(points[:, None, :] - points[None, :, :])
        return np.sqrt((diff * diff).sum(axis=-1))

    def to_all(self, points: np.ndarray, i: int) -> np.ndarray:
        diff = self._wrap(points - points[i])
        return np.sqrt((diff * diff).sum(axis=-1))

    @property
    def doubling_dimension_hint(self) -> float:
        return float(self.dim)


class SnowflakeMetric(Metric):
    """The γ-snowflake ``e(u,v)**gamma`` of a base metric, 0 < γ ≤ 1.

    Snowflaking preserves metric axioms and scales the doubling dimension to
    ``p / γ``; with base Euclidean-2 and γ = 2/3 we get p = 3 without leaving
    the plane — the lever the ε-sweep experiment uses to probe the
    ``O(ε^{-(p+1)} n)`` bound's exponent.
    """

    def __init__(self, base: Metric, gamma: float) -> None:
        if not (0.0 < gamma <= 1.0):
            raise ParameterError(f"gamma must be in (0, 1], got {gamma}")
        self.base = base
        self.gamma = float(gamma)

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        return self.base.pairwise(points) ** self.gamma

    def to_all(self, points: np.ndarray, i: int) -> np.ndarray:
        return self.base.to_all(points, i) ** self.gamma

    @property
    def doubling_dimension_hint(self) -> "float | None":
        hint = self.base.doubling_dimension_hint
        return None if hint is None else hint / self.gamma
