"""Trivial skeleton baselines: BFS trees and the full topology.

Bracket the comparison space of the bench tables: a single BFS tree is the
sparsest connected sub-graph (n−1 edges, but unbounded multiplicative
stretch from arbitrary nodes), and the full topology is the (1, 0)-spanner
(m edges, stretch-free) — the Ω(n²) reference Table 1 pits Theorem 2
against on unit disk graphs.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..graph import Graph
from ..graph.traversal import bfs_parents

__all__ = ["bfs_tree", "spanning_forest", "full_topology"]


def bfs_tree(g: Graph, root: int) -> Graph:
    """The BFS tree of *g* from *root* (covers only root's component)."""
    _dist, parent = bfs_parents(g, root)
    h = Graph(g.num_nodes)
    for v in g.nodes():
        p = parent[v]
        if p >= 0 and p != v:
            h.add_edge(v, p)
    return h


def spanning_forest(g: Graph) -> Graph:
    """A BFS forest covering every component."""
    h = Graph(g.num_nodes)
    visited = [False] * g.num_nodes
    for root in g.nodes():
        if visited[root]:
            continue
        _dist, parent = bfs_parents(g, root)
        for v in g.nodes():
            if parent[v] >= 0:
                visited[v] = True
                if parent[v] != v:
                    h.add_edge(v, parent[v])
    return h


def full_topology(g: Graph) -> Graph:
    """The trivial (1, 0)-spanner: all edges (what plain OSPF floods)."""
    if g.num_nodes < 0:  # pragma: no cover - defensive only
        raise ParameterError("invalid graph")
    return g.copy()
