"""Baswana–Sen randomized (2k−1)-spanner (unweighted specialization).

The distributed-spanner literature the paper positions against ([2] in
Table 1 builds on the same clustering machinery).  Two phases:

1. **Cluster formation** (k−1 rounds).  Start from singleton clusters.
   Each round, sample surviving clusters with probability ``n^{-1/k}``.
   A vertex adjacent to a sampled cluster joins it through one spanner
   edge and keeps only its other-cluster edges alive; a vertex adjacent to
   *no* sampled cluster adds one spanner edge toward **every** adjacent
   cluster and retires from the process.
2. **Cluster joining.**  Every surviving vertex adds one spanner edge to
   each cluster still adjacent to it.

Expected size ``O(k · n^{1+1/k})``; stretch ``2k−1`` with certainty (the
tests verify stretch exactly and size statistically).  The implementation
follows Baswana & Sen (2007) §4 for unweighted graphs; "one edge toward a
cluster" picks the smallest-id endpoint for reproducibility given a seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng

__all__ = ["baswana_sen_spanner"]


def baswana_sen_spanner(
    g: Graph, k: int, seed: "int | np.random.Generator | None" = None
) -> Graph:
    """A (2k−1, 0)-spanner with expected O(k·n^{1+1/k}) edges."""
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    rng = ensure_rng(seed)
    n = g.num_nodes
    h = Graph(n)
    if n == 0 or g.num_edges == 0:
        return h
    if k == 1:
        return g.copy()  # (1,0)-spanner must keep all edges

    sample_p = n ** (-1.0 / k)
    # cluster[v]: id of v's cluster, or -1 once v has retired.
    cluster = list(range(n))
    # live[v]: neighbors of v whose edges are still under consideration.
    live: list[set[int]] = [set(g.neighbors(v)) for v in range(n)]

    def adjacent_clusters(v: int) -> dict:
        """cluster id -> smallest live neighbor of v in that cluster."""
        out: dict[int, int] = {}
        for w in sorted(live[v]):
            c = cluster[w]
            if c >= 0 and c not in out:
                out[c] = w
        return out

    def drop_edges_to_cluster(v: int, c: int) -> None:
        for w in [w for w in live[v] if cluster[w] == c]:
            live[v].discard(w)
            live[w].discard(v)

    for _ in range(k - 1):
        current_clusters = sorted({c for c in cluster if c >= 0})
        sampled = {c for c in current_clusters if rng.random() < sample_p}
        new_cluster = list(cluster)
        for v in range(n):
            if cluster[v] < 0:
                continue
            if cluster[v] in sampled:
                continue  # v's own cluster survives; v stays put
            adj = adjacent_clusters(v)
            sampled_adj = {c: w for c, w in adj.items() if c in sampled}
            if sampled_adj:
                # Join the sampled adjacent cluster via one edge; drop edges
                # to the joined cluster (now intra-cluster) — and, per the
                # algorithm, edges to clusters "closer or equal" are also
                # dropped; unweighted ⇒ only the joined one matters.
                c, w = min(sampled_adj.items())
                h.add_edge(v, w)
                new_cluster[v] = c
                drop_edges_to_cluster(v, c)
            else:
                # Retire: one edge per adjacent cluster, then remove v.
                for c, w in sorted(adj.items()):
                    h.add_edge(v, w)
                    drop_edges_to_cluster(v, c)
                new_cluster[v] = -1
        cluster = new_cluster
        # Intra-cluster edges are never reconsidered.
        for v in range(n):
            if cluster[v] >= 0:
                drop_edges_to_cluster(v, cluster[v])

    # Phase 2: vertex-cluster joining.
    for v in range(n):
        for _c, w in sorted(adjacent_clusters(v).items()):
            h.add_edge(v, w)
    return h
