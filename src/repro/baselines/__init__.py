"""Baselines: the regular spanners and MPR selections of Table 1 / §1.2.

Everything a remote-spanner is compared against in the benchmark tables:
greedy and Baswana–Sen multiplicative spanners, the additive (1, 2)-spanner
family representative, OLSR multipoint relays (classical / k-coverage /
Wu–Lou–Dai extended), and the trivial BFS-tree / full-topology brackets.
"""

from .greedy_spanner import greedy_spanner
from .baswana_sen import baswana_sen_spanner
from .additive import additive_two_spanner, dominating_set_for
from .mpr import (
    FloodingOutcome,
    classical_mpr,
    extended_mpr_tree_nodes,
    k_coverage_mpr,
    simulate_blind_flooding,
    simulate_mpr_flooding,
)
from .trees import bfs_tree, full_topology, spanning_forest

__all__ = [
    "greedy_spanner",
    "baswana_sen_spanner",
    "additive_two_spanner",
    "dominating_set_for",
    "FloodingOutcome",
    "classical_mpr",
    "extended_mpr_tree_nodes",
    "k_coverage_mpr",
    "simulate_blind_flooding",
    "simulate_mpr_flooding",
    "bfs_tree",
    "full_topology",
    "spanning_forest",
]
