"""Althöfer greedy (2k−1)-spanner — the classical regular-spanner baseline.

Table 1's first row cites the folklore result that every graph admits a
``(2k−1, 0)``-spanner with ``O(n^{1+1/k})`` edges.  The greedy construction
(Althöfer et al. 1993) realizes it: scan edges, keep an edge only when the
current spanner's endpoint distance exceeds the stretch budget.  The result
has girth > 2k, which implies the edge bound by the Moore bound.

Because any (α, β)-spanner is also an (α, β)-remote-spanner — and even an
(α, β−α+1)-remote-spanner (paper §1.2) — these baselines are directly
comparable to the remote-spanner constructions in the benchmark tables.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..graph import Graph, bounded_distance

__all__ = ["greedy_spanner"]


def greedy_spanner(g: Graph, stretch: int) -> Graph:
    """The greedy (stretch, 0)-spanner of *g*; *stretch* = 2k−1 is canonical.

    Edge scan order is canonical (sorted pairs) so results are
    deterministic.  Each kept-edge decision runs a target-early-exit cutoff
    BFS in the partial spanner (:func:`~repro.graph.traversal.\
bounded_distance` — it stays on the set backend because H mutates between
    probes) — O(m · m_H) worst case, fine at experiment scale.
    """
    if stretch < 1:
        raise ParameterError(f"stretch must be ≥ 1, got {stretch}")
    h = Graph(g.num_nodes)
    for u, v in sorted(g.edges()):
        # Distance in the current partial spanner, capped at stretch.
        if bounded_distance(h, u, v, stretch) > stretch:
            h.add_edge(u, v)
    return h
