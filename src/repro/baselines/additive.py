"""Additive (1, 2)-spanner (Aingworth–Chekuri–Indyk–Motwani style).

Representative of the ``(k, k−1)``-spanner family of Table 1's row 2
(Baswana–Kavitha–Mehlhorn–Pettie [2]) at its smallest instantiation: a
purely additive surplus of 2 with ``O(n^{3/2})``-ish edges.  Construction:

* keep **every** edge incident to a low-degree vertex (degree < threshold,
  default ``√n``);
* greedily pick a dominating set D for the high-degree vertices (their
  closed neighborhoods as the cover sets — size ``O((n/θ)·log n)``);
* add a full BFS tree from every dominator.

Stretch argument: a shortest u-v path either consists of low-degree
vertices only (all its edges survive) or contains a high-degree vertex w;
w's dominator d sees both endpoints at ``d(u,d) ≤ d(u,w)+1`` and
``d(d,v) ≤ 1+d(w,v)``, so the two BFS-tree paths give ``d(u,v)+2``.

Per §1.2 of the paper, a (1, 2)-spanner is automatically a (1, 2)-remote-
spanner — the comparison the additive row of the bench table draws.
"""

from __future__ import annotations

import math

from ..errors import ParameterError
from ..graph import Graph
from ..graph.traversal import batched_bfs_parents
from ..setcover import SetCoverInstance, greedy_set_cover

__all__ = ["additive_two_spanner", "dominating_set_for"]


def dominating_set_for(g: Graph, targets: "set[int]") -> list[int]:
    """Greedy dominating set for *targets* using closed neighborhoods."""
    if not targets:
        return []
    sets = {
        x: frozenset((g.neighbors(x) | {x}) & targets)
        for x in g.nodes()
        if (g.neighbors(x) | {x}) & targets
    }
    inst = SetCoverInstance.from_sets(sets, universe=targets)
    return list(greedy_set_cover(inst))


def additive_two_spanner(g: Graph, degree_threshold: "int | None" = None) -> Graph:
    """A (1, 2)-additive spanner with ``O(n^{3/2} log n)`` edges."""
    n = g.num_nodes
    if degree_threshold is None:
        degree_threshold = max(1, math.isqrt(n))
    if degree_threshold < 1:
        raise ParameterError(f"degree threshold must be ≥ 1, got {degree_threshold}")
    h = Graph(n)
    high = {v for v in g.nodes() if g.degree(v) >= degree_threshold}
    # All edges with a low-degree endpoint.
    for u, v in g.edges():
        if u not in high or v not in high:
            h.add_edge(u, v)
    # BFS trees from a dominating set of the high-degree vertices — one
    # batched canonical-forest sweep instead of a per-dominator BFS loop.
    for _d, _dist, parent in batched_bfs_parents(g, dominating_set_for(g, high)):
        for v in g.nodes():
            p = parent[v]
            if p >= 0 and p != v:
                h.add_edge(v, p)
    return h
