"""Multipoint relays (MPR) — the ad hoc networking lineage of the paper.

§1.2: "our dominating trees generalize the notions of multipoint relays
introduced in ad hoc networks [15, 4] ... multipoint relays as defined in
[15, 4] can be seen as (2, 0)-dominating trees"; the Wu–Lou–Dai extended
MPRs [28] are (2, 1)-dominating trees; the k-coverage extension [4, 5] is
exactly the k-connecting (2, 0)-dominating tree.  This module packages
those historical selections under their networking names and adds the
flooding application they were invented for, so the benches can show both
faces of the same object:

* union of MPR stars  → the (1, 0)-remote-spanner of Theorem 2 (routing);
* per-sender MPR relaying → optimized flooding (broadcast) with far fewer
  transmissions than blind flooding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.domtree_greedy import dom_tree_greedy
from ..core.domtree_kcover import mpr_set
from ..errors import ParameterError
from ..graph import Graph

__all__ = [
    "classical_mpr",
    "k_coverage_mpr",
    "extended_mpr_tree_nodes",
    "FloodingOutcome",
    "simulate_mpr_flooding",
    "simulate_blind_flooding",
]


def classical_mpr(g: Graph, u: int) -> set[int]:
    """OLSR's MPR selection for *u* [15, 4]: greedy (2, 0)-domination."""
    return mpr_set(g, u, k=1)


def k_coverage_mpr(g: Graph, u: int, k: int) -> set[int]:
    """k-coverage MPR [4, 5] — k-connecting (2, 0)-dominating star of u."""
    return mpr_set(g, u, k=k)


def extended_mpr_tree_nodes(g: Graph, u: int) -> set[int]:
    """Wu–Lou–Dai extended MPRs [28]: nodes of a (2, 1)-dominating tree.

    The paper's observation: these were introduced for connected dominating
    sets, but their union also forms a (2, −1)-remote-spanner.
    """
    return dom_tree_greedy(g, u, r=2, beta=1).nodes() - {u}


# --------------------------------------------------------------------- #
# flooding application
# --------------------------------------------------------------------- #


@dataclass
class FloodingOutcome:
    """Result of a network-wide broadcast simulation."""

    reached: set
    transmissions: int
    rounds: int

    def coverage(self, g: Graph) -> float:
        """Fraction of nodes reached."""
        return len(self.reached) / g.num_nodes if g.num_nodes else 1.0


def simulate_blind_flooding(g: Graph, source: int) -> FloodingOutcome:
    """Classic flooding: every node retransmits once.  Baseline cost."""
    g._check(source)
    reached = {source}
    frontier = [source]
    transmissions = 0
    rounds = 0
    while frontier:
        rounds += 1
        nxt: list[int] = []
        for v in frontier:
            transmissions += 1
            for w in g.neighbors(v):
                if w not in reached:
                    reached.add(w)
                    nxt.append(w)
        frontier = nxt
    return FloodingOutcome(reached=reached, transmissions=transmissions, rounds=rounds)


def simulate_mpr_flooding(
    g: Graph, source: int, k: int = 1, relays: "dict[int, set[int]] | None" = None
) -> FloodingOutcome:
    """OLSR-optimized flooding: only MPRs of the previous hop retransmit.

    A node retransmits iff it is an MPR of the neighbor it first heard the
    message from.  With the (2, 0)-domination property this reaches every
    node (the tests assert full coverage) while cutting transmissions
    roughly to the MPR density.  *relays* may inject precomputed MPR sets
    (e.g. from a spanner build) to avoid recomputation.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    g._check(source)
    g.freeze()  # per-relay MPR selections below share one CSR snapshot
    if relays is None:
        relays = {}

    def mprs_of(v: int) -> set[int]:
        if v not in relays:
            relays[v] = mpr_set(g, v, k=k)
        return relays[v]

    reached = {source}
    transmissions = 1
    rounds = 0
    # (node, heard_from) queue; the source "transmits" unconditionally.
    frontier: list[tuple[int, int]] = []
    for w in g.neighbors(source):
        reached.add(w)
        frontier.append((w, source))
    while frontier:
        rounds += 1
        nxt: list[tuple[int, int]] = []
        for v, heard_from in frontier:
            if v not in mprs_of(heard_from):
                continue  # not selected as relay by its predecessor
            transmissions += 1
            for w in g.neighbors(v):
                if w not in reached:
                    reached.add(w)
                    nxt.append((w, v))
        frontier = nxt
    return FloodingOutcome(reached=reached, transmissions=transmissions, rounds=rounds)
