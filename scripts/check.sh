#!/usr/bin/env bash
# Repo check gate: collection -> tier-1 -> perf artifacts.
#
#   ./scripts/check.sh          # full gate
#   SKIP_BENCH=1 ./scripts/check.sh   # tests only (e.g. on battery)
#
# Step 3 runs the traversal, dynamic-maintenance, routing-serving and
# parallel-serving micro-benchmarks and leaves their JSON artifacts at
# ./BENCH_traversal.json, ./BENCH_dynamic.json, ./BENCH_routing.json and
# ./BENCH_parallel.json (copied from benchmarks/results/) so successive
# PRs accumulate a perf trajectory.  The parallel bench degrades
# gracefully on single-core runners: it records the W=1 measurement and
# a "degraded" marker instead of asserting the 4-worker speedup bar.
# CI (.github/workflows/check.yml) runs exactly this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/3] collection gate (every test module must import) =="
python -m pytest --collect-only -q tests > /dev/null

echo "== [2/3] tier-1 test suite =="
python -m pytest -q tests

if [ "${SKIP_BENCH:-0}" = "1" ]; then
    echo "== [3/3] perf benchmarks skipped (SKIP_BENCH=1) =="
    exit 0
fi

echo "== [3/3] perf benchmarks (write BENCH_traversal.json, BENCH_dynamic.json, BENCH_routing.json, BENCH_parallel.json) =="
python -m pytest -q benchmarks/test_bench_traversal.py benchmarks/test_bench_dynamic.py \
    benchmarks/test_bench_routing.py benchmarks/test_bench_parallel.py \
    -p no:cacheprovider --benchmark-disable
cp benchmarks/results/BENCH_traversal.json BENCH_traversal.json
cp benchmarks/results/BENCH_dynamic.json BENCH_dynamic.json
cp benchmarks/results/BENCH_routing.json BENCH_routing.json
cp benchmarks/results/BENCH_parallel.json BENCH_parallel.json
echo "perf artifacts: ./BENCH_traversal.json ./BENCH_dynamic.json ./BENCH_routing.json ./BENCH_parallel.json"
python - <<'PYEOF'
import json
t = json.load(open("BENCH_traversal.json"))
d = json.load(open("BENCH_dynamic.json"))
r = json.load(open("BENCH_routing.json"))
p = json.load(open("BENCH_parallel.json"))
print(
    f"batched_bfs speedup vs set backend: "
    f"{t['speedup_batched_vs_sets']}x (required {t['required_speedup']}x)"
)
print(
    f"incremental maintenance speedup vs rebuild-per-event: "
    f"{d['speedup_incremental_vs_rebuild']}x (required {d['required_speedup']}x)"
)
print(
    f"routing_table kernel speedup vs per-destination scan: "
    f"{r['kernel']['speedup_neighbor_vs_scan']}x "
    f"(required {r['kernel']['required_speedup']}x)"
)
print(
    f"incremental tables speedup vs recompute-per-event: "
    f"{r['incremental_tables']['speedup_incremental_vs_recompute']}x "
    f"(required {r['incremental_tables']['required_speedup']}x)"
)
sharded = p["sharded_repair"]
curve = ", ".join(
    f"W={w}: {s['events_per_second']} ev/s" for w, s in sharded["workers"].items()
)
if sharded.get("degraded"):
    print(f"sharded repair: {curve} [{sharded['degraded']}]")
else:
    print(
        f"sharded repair 4-vs-1 worker speedup: {sharded['speedup_4_vs_1']}x "
        f"(required {sharded['required_speedup']}x; {curve})"
    )
PYEOF
