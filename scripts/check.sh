#!/usr/bin/env bash
# Repo check gate: collection -> tier-1 -> traversal perf artifact.
#
#   ./scripts/check.sh          # full gate
#   SKIP_BENCH=1 ./scripts/check.sh   # tests only (e.g. on battery)
#
# Step 3 runs the traversal micro-benchmark and leaves its JSON artifact at
# ./BENCH_traversal.json (copied from benchmarks/results/) so successive
# PRs accumulate a perf trajectory.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/3] collection gate (every test module must import) =="
python -m pytest --collect-only -q tests > /dev/null

echo "== [2/3] tier-1 test suite =="
python -m pytest -q tests

if [ "${SKIP_BENCH:-0}" = "1" ]; then
    echo "== [3/3] traversal benchmark skipped (SKIP_BENCH=1) =="
    exit 0
fi

echo "== [3/3] traversal micro-benchmark (writes BENCH_traversal.json) =="
python -m pytest -q benchmarks/test_bench_traversal.py -p no:cacheprovider \
    --benchmark-disable
cp benchmarks/results/BENCH_traversal.json BENCH_traversal.json
echo "perf artifact: ./BENCH_traversal.json"
python - <<'EOF'
import json
d = json.load(open("BENCH_traversal.json"))
print(
    f"batched_bfs speedup vs set backend: "
    f"{d['speedup_batched_vs_sets']}x (required {d['required_speedup']}x)"
)
EOF
