#!/usr/bin/env bash
# Repo check gate: collection -> tier-1 -> perf artifacts -> regression
# guard -> static analysis -> runtime protocol sanitizer -> chaos corpus.
#
#   ./scripts/check.sh                 # full gate
#   SKIP_BENCH=1 ./scripts/check.sh    # tests + static analysis (e.g. on battery)
#   BENCH_GUARD_SKIP=1 ./scripts/check.sh   # record benches, skip the guard
#
# Step 3 runs the traversal, dynamic-maintenance, routing-serving,
# parallel-serving, query-serving, observability, lint-gate,
# fault-recovery and wire-bytes micro-benchmarks and leaves their JSON
# artifacts at ./BENCH_traversal.json, ./BENCH_dynamic.json,
# ./BENCH_routing.json, ./BENCH_parallel.json, ./BENCH_queries.json,
# ./BENCH_obs.json, ./BENCH_lint.json, ./BENCH_faults.json and
# ./BENCH_wire.json (copied from benchmarks/results/) so successive PRs
# accumulate a perf trajectory.
# The parallel, query and obs benches degrade gracefully on single-core
# runners: they record the measurement and a "degraded" marker instead
# of asserting the multi-core speedup/overhead bars.  A traffic soak
# smoke then writes ./OBS_traffic.json + ./OBS_traffic.trace.json
# through the --metrics/--trace flags (the artifacts CI uploads), and a
# distserve smoke converges the actor tier on loopback and over a
# Unix-domain socket.
#
# Step 4 compares the freshly recorded speedups against the artifacts
# committed at HEAD with a tolerance band (scripts/bench_guard.py) and
# fails loudly on a structural perf regression.
#
# Step 5 is static analysis: the repo's own AST linter runs twice —
# per-file (`python -m repro lint`, the seqlock/RNG/shm/tuning/task/
# exception/fault-hook invariants, see src/repro/analysis/lint/) and
# whole-program (`python -m repro lint --deep` — the interprocedural
# RL008–RL011 rules over the project call graph, see
# src/repro/analysis/deep/).  Both are zero-baseline and blocking; ruff
# and mypy run when installed (`pip install -e ".[lint]"`) — `ruff
# check` blocks, `ruff format --check` is advisory (formatting drift is
# reported, not fatal), mypy blocks on the typed core subset from
# pyproject.toml.
#
# Step 6 is the dynamic twin of step 5: the runtime protocol sanitizer
# (REPRO_SANITIZE=1, see src/repro/analysis/sanitize.py) re-runs the
# parallel suite plus its own corpus with the seqlock/shm/snapshot hooks
# armed in raise mode, so any protocol violation the static pass can't
# see aborts the run instead of silently corrupting shared state.
#
# Step 7 re-runs the chaos corpus (tests/faults/: injected crashes,
# wedges, shm failures, degraded serving, reconvergence) under the same
# sanitizer — supervisor recovery must not violate the seqlock/shm
# protocols it is repairing.
# CI (.github/workflows/check.yml) runs exactly this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/7] collection gate (every test module must import) =="
python -m pytest --collect-only -q tests > /dev/null

echo "== [2/7] tier-1 test suite =="
python -m pytest -q tests

run_static_analysis() {
    echo "== [5/7] static analysis (reprolint shallow + deep; ruff/mypy when installed) =="
    PYTHONPATH=src python -m repro lint src benchmarks scripts
    PYTHONPATH=src python -m repro lint --deep src benchmarks scripts
    if command -v ruff > /dev/null 2>&1; then
        ruff check .
        ruff format --check . \
            || echo "ruff format: drift reported above (advisory — run 'ruff format .')"
    else
        echo "ruff not installed — skipped (pip install -e '.[lint]')"
    fi
    if command -v mypy > /dev/null 2>&1; then
        mypy
    else
        echo "mypy not installed — skipped (pip install -e '.[lint]')"
    fi
}

run_sanitizer_suite() {
    echo "== [6/7] runtime protocol sanitizer (REPRO_SANITIZE=1 over the parallel paths) =="
    REPRO_SANITIZE=1 python -m pytest -q tests/parallel tests/analysis/test_sanitizer.py
}

run_chaos_corpus() {
    echo "== [7/7] chaos corpus under the sanitizer (fault plans + self-healing + degraded serving) =="
    REPRO_SANITIZE=1 python -m pytest -q tests/faults
}

if [ "${SKIP_BENCH:-0}" = "1" ]; then
    echo "== [3/7] perf benchmarks skipped (SKIP_BENCH=1) =="
    echo "== [4/7] bench regression guard skipped (SKIP_BENCH=1) =="
    run_static_analysis
    run_sanitizer_suite
    run_chaos_corpus
    exit 0
fi

echo "== [3/7] perf benchmarks (write BENCH_{traversal,dynamic,routing,parallel,queries,obs,lint,faults,wire}.json) =="
python -m pytest -q benchmarks/test_bench_traversal.py benchmarks/test_bench_dynamic.py \
    benchmarks/test_bench_routing.py benchmarks/test_bench_parallel.py \
    benchmarks/test_bench_queries.py benchmarks/test_bench_obs.py \
    benchmarks/test_bench_lint.py benchmarks/test_bench_faults.py \
    benchmarks/test_bench_wire.py \
    -p no:cacheprovider --benchmark-disable
cp benchmarks/results/BENCH_traversal.json BENCH_traversal.json
cp benchmarks/results/BENCH_dynamic.json BENCH_dynamic.json
cp benchmarks/results/BENCH_routing.json BENCH_routing.json
cp benchmarks/results/BENCH_parallel.json BENCH_parallel.json
cp benchmarks/results/BENCH_queries.json BENCH_queries.json
cp benchmarks/results/BENCH_obs.json BENCH_obs.json
cp benchmarks/results/BENCH_lint.json BENCH_lint.json
cp benchmarks/results/BENCH_faults.json BENCH_faults.json
cp benchmarks/results/BENCH_wire.json BENCH_wire.json
echo "perf artifacts: ./BENCH_traversal.json ./BENCH_dynamic.json ./BENCH_routing.json ./BENCH_parallel.json ./BENCH_queries.json ./BENCH_obs.json ./BENCH_lint.json ./BENCH_faults.json ./BENCH_wire.json"
echo "-- observability smoke: traffic soak writes --metrics/--trace artifacts"
PYTHONPATH=src python -m repro traffic --n 150 --events 20 --queries 15 \
    --workload uniform --compare-bfs 0 \
    --metrics OBS_traffic.json --trace OBS_traffic.trace.json
PYTHONPATH=src python -m repro obs OBS_traffic.json > /dev/null
echo "-- chaos smoke: crashy soak over the outage scenario must reconverge"
PYTHONPATH=src python -m repro chaos --plan crashy --scenario outage \
    --n 80 --events 20 --tick 5 --queries 10 --workers 1 --seed 2009
echo "-- distserve smoke: actor tier converges on loopback and over a UDS socket"
PYTHONPATH=src python -m repro distserve --scenario mobility --transport loop \
    --n 80 --events 20 --tick 5 --shards 4 --queries 10 --seed 2009
PYTHONPATH=src python -m repro distserve --scenario growth --transport uds \
    --n 60 --events 16 --tick 4 --shards 3 --queries 8 --seed 2009
python - <<'PYEOF'
import json
t = json.load(open("BENCH_traversal.json"))
d = json.load(open("BENCH_dynamic.json"))
r = json.load(open("BENCH_routing.json"))
p = json.load(open("BENCH_parallel.json"))
q = json.load(open("BENCH_queries.json"))
o = json.load(open("BENCH_obs.json"))
lint = json.load(open("BENCH_lint.json"))
flt = json.load(open("BENCH_faults.json"))
wire = json.load(open("BENCH_wire.json"))
print(
    f"batched_bfs speedup vs set backend: "
    f"{t['speedup_batched_vs_sets']}x (required {t['required_speedup']}x)"
)
print(
    f"incremental maintenance speedup vs rebuild-per-event: "
    f"{d['speedup_incremental_vs_rebuild']}x (required {d['required_speedup']}x)"
)
print(
    f"routing_table kernel speedup vs per-destination scan: "
    f"{r['kernel']['speedup_neighbor_vs_scan']}x "
    f"(required {r['kernel']['required_speedup']}x)"
)
print(
    f"incremental tables speedup vs recompute-per-event: "
    f"{r['incremental_tables']['speedup_incremental_vs_recompute']}x "
    f"(required {r['incremental_tables']['required_speedup']}x)"
)
sharded = p["sharded_repair"]
curve = ", ".join(
    f"W={w}: {s['events_per_second']} ev/s" for w, s in sharded["workers"].items()
)
if sharded.get("degraded"):
    print(f"sharded repair: {curve} [{sharded['degraded']}]")
else:
    print(
        f"sharded repair 4-vs-1 worker speedup: {sharded['speedup_4_vs_1']}x "
        f"(required {sharded['required_speedup']}x; {curve})"
    )
qt = q["query_throughput"]
line = (
    f"served route queries vs per-hop BFS: {qt['speedup_served_vs_bfs']}x "
    f"(required {qt['required_speedup']}x; "
    f"{qt['route_served']['queries_per_second']} q/s served)"
)
print(line + (f" [{qt['degraded']}]" if qt.get("degraded") else ""))
rd = q["read_during_repair"]
print(
    f"concurrent reads during repair: {rd['reads_per_second']}/s, "
    f"p50 {rd['latency_us']['p50']}us p99 {rd['latency_us']['p99']}us, "
    f"{rd['torn_retries']} seqlock retries"
    + (f" [{rd['degraded']}]" if rd.get("degraded") else "")
)
ov = o["overhead"]
print(
    f"obs instrumentation overhead: {ov['overhead_pct']}% "
    f"(bar {ov['max_overhead_pct']}%)"
    + (f" [{ov['degraded']}]" if ov.get("degraded") else "")
)
mx = o["merge_exactness"]
print(
    f"obs merge exactness: serial {mx['serial_rows_recomputed']} rows == "
    f"merged {mx['merged_rows_recomputed']} over {mx['workers']} shards: "
    f"{'exact' if mx['exact'] else 'MISMATCH'}"
)
dl = lint["deep_lint"]
print(
    f"deep lint gate: {dl['files']} files in {dl['wall_seconds']}s "
    f"(bar {dl['max_wall_seconds']}s; {dl['files_per_second']} files/s)"
)
cr = flt["crash_recovery"]
print(
    f"fault recovery: {cr['recovery_events_per_second']} ev/s under the crash "
    f"storm vs {cr['quiet_events_per_second']} ev/s quiet "
    f"({cr['crashes_survived']} crash(es) survived, "
    f"reconverged: {'yes' if cr['reconverged'] else 'NO'})"
)
ho = flt["hooks_off_overhead"]
print(
    f"fault hooks disarmed: {ho['overhead_percent']}% of a repair event "
    f"(bar {ho['bar_percent']}%)"
)
w = wire["wire"]
print(
    f"wire bytes: incremental LSA {w['incremental_bytes']} B vs naive "
    f"full-flooding {w['naive_bytes']} B — "
    f"{w['reduction_naive_vs_incremental']}x reduction (bar {w['bar']}x)"
)
PYEOF

echo "== [4/7] benchmark-regression guard (fresh vs committed, tolerance band) =="
python scripts/bench_guard.py

run_static_analysis
run_sanitizer_suite
run_chaos_corpus
