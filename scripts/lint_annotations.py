#!/usr/bin/env python
"""Convert ``repro lint --format json`` output into problem-matcher lines.

CI runs the linter with ``--format json`` (the stable ``reprolint/1``
schema), keeps the artifact for inspection, and pipes it through this
script, which re-emits each finding as::

    path:line:col: RLxxx message

— exactly the shape ``.github/problem-matchers/reprolint.json`` turns
into inline PR annotations.  Suppressed findings (present in the JSON
because CI asks for them) are echoed as informational lines prefixed
``suppressed:`` so the matcher skips them; the exit status mirrors the
linter's: 1 when any *unsuppressed* finding exists, else 0.

Usage::

    python scripts/lint_annotations.py LINT_deep.json
    python -m repro lint --deep --format json src | python scripts/lint_annotations.py
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        with open(argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    else:
        report = json.load(sys.stdin)

    schema = report.get("schema")
    if schema != "reprolint/1":
        print(f"lint_annotations: unknown schema {schema!r}", file=sys.stderr)
        return 2

    live = 0
    for finding in report.get("findings", []):
        line = (
            f"{finding['path']}:{finding['line']}:{finding['col']}: "
            f"{finding['rule']} {finding['message']}"
        )
        if finding.get("suppressed"):
            print(f"suppressed: {line}")
        else:
            print(line)
            live += 1
    summary = report.get("summary", {})
    print(
        f"lint_annotations: {live} finding(s), "
        f"{summary.get('suppressed', 0)} suppressed"
        + (" [deep]" if report.get("deep") else ""),
        file=sys.stderr,
    )
    return 1 if live else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
