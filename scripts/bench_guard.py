#!/usr/bin/env python
"""Benchmark-regression guard: fresh BENCH_*.json vs the committed artifacts.

``scripts/check.sh`` step 3 records fresh perf artifacts at the repo root;
this guard compares every headline *speedup* against the artifact committed
at HEAD (``benchmarks/results/``, read via ``git show`` — the working-tree
copies are overwritten by the fresh run) and fails loudly when a speedup
regressed below the tolerance band.

The band defaults to 0.5 — a fresh speedup may drop to 50% of the committed
one before the guard trips — because the committed numbers usually come
from different hardware than the runner re-measuring them; the guard exists
to catch *structural* regressions (a fast path silently disengaging, an
algorithmic slowdown), not scheduler noise.

Environment:
    BENCH_GUARD_TOLERANCE   override the band (float in (0, 1])
    BENCH_GUARD_SKIP=1      skip the guard entirely (prints a notice)

Skipped (with a note, never a failure): metrics whose committed or fresh
value is null — degraded runs on small runners record a measurement but no
speedup — and artifacts with no committed baseline yet (first PR).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

#: (artifact file, path into the JSON, human label)
METRICS = [
    ("BENCH_traversal.json", ("speedup_batched_vs_sets",), "batched BFS vs sets"),
    ("BENCH_dynamic.json", ("speedup_incremental_vs_rebuild",), "incremental maintenance"),
    ("BENCH_routing.json", ("kernel", "speedup_neighbor_vs_scan"), "routing-table kernel"),
    (
        "BENCH_routing.json",
        ("incremental_tables", "speedup_incremental_vs_recompute"),
        "incremental tables",
    ),
    ("BENCH_parallel.json", ("sharded_repair", "speedup_4_vs_1"), "sharded repair 4v1"),
    ("BENCH_queries.json", ("query_throughput", "speedup_served_vs_bfs"), "served queries"),
    ("BENCH_lint.json", ("deep_lint", "files_per_second"), "deep lint throughput"),
    (
        "BENCH_faults.json",
        ("crash_recovery", "recovery_events_per_second"),
        "fault recovery throughput",
    ),
    (
        "BENCH_wire.json",
        ("wire", "reduction_naive_vs_incremental"),
        "wire bytes reduction",
    ),
]


def dig(data, path):
    for key in path:
        if not isinstance(data, dict) or key not in data:
            return None
        data = data[key]
    return data


def committed_artifact(name: str):
    """The artifact as committed at HEAD (None when not in git yet)."""
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:benchmarks/results/{name}"],
            capture_output=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def main() -> int:
    if os.environ.get("BENCH_GUARD_SKIP") == "1":
        print("bench guard: skipped (BENCH_GUARD_SKIP=1)")
        return 0
    tolerance = float(os.environ.get("BENCH_GUARD_TOLERANCE", "0.5"))
    if not (0.0 < tolerance <= 1.0):
        print(f"bench guard: BENCH_GUARD_TOLERANCE must be in (0, 1], got {tolerance}")
        return 2
    failures = []
    print(f"bench guard: fresh speedups vs committed, tolerance {tolerance:.0%}")
    for artifact, path, label in METRICS:
        dotted = ".".join(path)
        if not os.path.exists(artifact):
            print(f"  - {label}: SKIP (no fresh {artifact} at repo root)")
            continue
        with open(artifact, encoding="utf-8") as fh:
            fresh = dig(json.load(fh), path)
        baseline_doc = committed_artifact(artifact)
        if baseline_doc is None:
            print(f"  - {label}: SKIP (no committed baseline for {artifact} yet)")
            continue
        baseline = dig(baseline_doc, path)
        if baseline is None or fresh is None:
            which = "committed" if baseline is None else "fresh"
            print(f"  - {label}: SKIP ({which} {dotted} is null — degraded runner?)")
            continue
        floor = tolerance * baseline
        verdict = "ok" if fresh >= floor else "REGRESSION"
        print(
            f"  - {label}: committed {baseline}x, fresh {fresh}x "
            f"(floor {floor:.2f}x) -> {verdict}"
        )
        if fresh < floor:
            failures.append(
                f"{label} ({artifact}:{dotted}): {fresh}x < {tolerance:.0%} "
                f"of committed {baseline}x"
            )
    if failures:
        print("\nbench guard: PERFORMANCE REGRESSION DETECTED", file=sys.stderr)
        for failure in failures:
            print(f"  !! {failure}", file=sys.stderr)
        print(
            "\nIf the regression is expected (e.g. a deliberate trade-off), "
            "re-record the artifacts and commit them with the change; to "
            "bypass once: BENCH_GUARD_SKIP=1.",
            file=sys.stderr,
        )
        return 1
    print("bench guard: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
