#!/usr/bin/env python
"""Link-state routing on a remote-spanner: the paper's §1 application.

Simulates the full OLSR-style pipeline on an ad hoc network:

* every router learns its neighbors (HELLO) and the advertised sub-graph H;
* packets are forwarded greedily: each router independently sends toward
  its neighbor closest to the destination in its own augmented view H_u;
* we measure route stretch for three advertised sub-graphs — the exact
  (1, 0)-remote-spanner, the (1+ε, 1−2ε)-remote-spanner, and a bare
  BFS tree (what you get if you advertise a spanning tree only);
* we also run the other MPR application: optimized flooding.

Run:  python examples/link_state_routing.py
"""

from repro import build_k_connecting_spanner, build_remote_spanner
from repro.baselines import bfs_tree, simulate_blind_flooding, simulate_mpr_flooding
from repro.experiments import largest_component, scaled_udg
from repro.graph import sample_pairs
from repro.routing import full_link_state_cost, route_all_pairs_stats, spanner_advertisement_cost


def main() -> None:
    g_full, _points = scaled_udg(n=250, target_degree=11.0, seed=7)
    g, _ids = largest_component(g_full)
    print(f"network: {g.num_nodes} nodes, {g.num_edges} links")
    pairs = sample_pairs(g, 120, seed=99, require_nonadjacent=False)
    ordered = [(s, t) for s, t in pairs] + [(t, s) for s, t in pairs]

    candidates = {
        "(1,0)-remote-spanner": build_k_connecting_spanner(g, k=1),
        "(1.5,0)-remote-spanner": build_remote_spanner(g, epsilon=0.5),
    }
    print(f"{'advertised sub-graph':<26} {'links':>6} {'max stretch':>12} "
          f"{'mean stretch':>13} {'delivered':>10}")
    for name, rs in candidates.items():
        stats = route_all_pairs_stats(rs.graph, g, pairs=ordered)
        cost = spanner_advertisement_cost(rs)
        print(f"{name:<26} {cost.entries_per_period:>6} {stats.max_stretch:>12.3f} "
              f"{stats.mean_stretch:>13.3f} {stats.delivered:>6}/{stats.pairs}")
        assert stats.invariant_violations == 0, "greedy-routing potential failed to drop"

    tree = bfs_tree(g, 0)
    tree_stats = route_all_pairs_stats(tree, g, pairs=ordered)
    print(f"{'BFS tree (for contrast)':<26} {tree.num_edges:>6} "
          f"{tree_stats.max_stretch:>12.3f} {tree_stats.mean_stretch:>13.3f} "
          f"{tree_stats.delivered:>6}/{tree_stats.pairs}")

    ospf = full_link_state_cost(g)
    print(f"\nfull link state would flood {ospf.entries_per_period} link entries per period")

    # The other face of MPRs: optimized flooding.
    blind = simulate_blind_flooding(g, source=0)
    mpr = simulate_mpr_flooding(g, source=0)
    print(f"\nbroadcast from node 0: blind flooding {blind.transmissions} transmissions, "
          f"MPR flooding {mpr.transmissions} "
          f"(coverage {100 * mpr.coverage(g):.0f}%)")
    assert mpr.reached == blind.reached, "MPR flooding must reach everyone"


if __name__ == "__main__":
    main()
