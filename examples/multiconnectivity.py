#!/usr/bin/env python
"""Multi-connectivity: k-connecting remote-spanners and failure survival.

The paper's §3 extends stretch to k internally-disjoint paths — the
property that enables multi-path routing and survives node failures.  This
example shows the difference concretely:

1. build a 2-connected ad hoc network;
2. compare the plain (1, 0)-remote-spanner (k = 1) against the
   2-connecting one (k = 2) and the 2-connecting (2, −1)-spanner of
   Theorem 3;
3. for sampled 2-connected pairs, exhibit the two disjoint paths the
   k = 2 spanner preserves, and show them surviving a relay failure;
4. verify the k-connecting distance bound d²_{H_s} ≤ d²_G on the spot.

Run:  python examples/multiconnectivity.py
"""

import math

from repro import (
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    disjoint_paths,
    k_connecting_profile,
)
from repro.experiments import largest_component, scaled_udg
from repro.graph import augmented_graph, bfs_distances, remove_nodes, sample_pairs


def main() -> None:
    g_full, _points = scaled_udg(n=200, target_degree=13.0, seed=21)
    g, _ids = largest_component(g_full)
    print(f"network: {g.num_nodes} nodes, {g.num_edges} links")

    rs1 = build_k_connecting_spanner(g, k=1)
    rs2 = build_k_connecting_spanner(g, k=2)
    rs2c = build_biconnecting_spanner(g)
    print(f"(1,0)-RS k=1: {rs1.num_edges} edges | k=2: {rs2.num_edges} edges "
          f"| 2-conn (2,-1): {rs2c.num_edges} edges  (full: {g.num_edges})")

    pairs = sample_pairs(g, 40, seed=5)
    shown = 0
    for s, t in pairs:
        d2_g = k_connecting_profile(g, s, t, 2)[1]
        if d2_g == math.inf:
            continue
        hs = augmented_graph(rs2.graph, g, s)
        d2_h = k_connecting_profile(hs, s, t, 2)[1]
        assert d2_h <= d2_g, f"k=2 stretch broken for {(s, t)}: {d2_h} > {d2_g}"
        if shown < 3:
            p, q = disjoint_paths(hs, s, t, 2)
            print(f"\npair ({s}, {t}): d²_G = {d2_g:g}, d² in H_s = {d2_h:g}")
            print(f"  path A: {' -> '.join(map(str, p))}")
            print(f"  path B: {' -> '.join(map(str, q))}")
            # Fail every internal relay of path A; path B must survive.
            casualties = p[1:-1]
            crippled = remove_nodes(hs, casualties)
            d_after = bfs_distances(crippled, s)[t]
            print(f"  after failing relays {casualties}: s→t still routable, "
                  f"{d_after} hops via the disjoint backup")
            assert d_after >= 0, "backup path should have survived"
            shown += 1
    print(f"\nall sampled 2-connected pairs satisfied d²_Hs ≤ d²_G "
          f"({shown} exhibited in detail)")


if __name__ == "__main__":
    main()
