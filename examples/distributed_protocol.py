#!/usr/bin/env python
"""The RemSpan protocol live: constant-round distributed construction.

Runs Algorithm 3 as an actual message-passing protocol (HELLO, scoped
link-state floods, local tree computation, tree floods) and demonstrates
the paper's three distributed claims:

* the protocol finishes in exactly 2r − 1 + 2β communication rounds on
  every topology (we run four constructions on two graphs);
* each node's locally-computed tree equals the centralized computation —
  "no synchronization between node decisions is necessary";
* under the periodic regime, a topology change stabilizes within T + 2F.

Run:  python examples/distributed_protocol.py
"""

from repro.core import dom_tree_greedy, dom_tree_kcover
from repro.distributed import PeriodicLinkState, run_remspan
from repro.experiments import largest_component, scaled_udg
from repro.graph.generators import random_connected_gnp


def main() -> None:
    udg_full, _pts = scaled_udg(n=120, target_degree=10.0, seed=3)
    udg, _ids = largest_component(udg_full)
    gnp = random_connected_gnp(80, 0.06, seed=4)

    print("one-shot RemSpan runs (communication rounds = 2r-1+2β):")
    print(f"{'graph':<10} {'construction':<22} {'rounds':>6} {'expected':>8} "
          f"{'edges':>6} {'broadcasts':>10}")
    for gname, g in (("UDG", udg), ("G(n,p)", gnp)):
        for kind, kwargs in (
            ("kcover", dict(k=1)),
            ("kcover", dict(k=2)),
            ("greedy", dict(r=3, beta=1)),
            ("kmis", dict(k=2)),
        ):
            res = run_remspan(g, kind, **kwargs)
            label = f"{kind}({', '.join(f'{a}={b}' for a, b in kwargs.items())})"
            print(f"{gname:<10} {label:<22} {res.communication_rounds:>6} "
                  f"{res.expected_rounds:>8} {res.spanner.num_edges:>6} "
                  f"{res.stats.broadcasts:>10}")
            assert res.communication_rounds == res.expected_rounds

    # Locality: distributed trees == centralized trees, node for node.
    res = run_remspan(udg, "greedy", r=3, beta=1)
    agree = sum(
        set(res.nodes[u].tree.edges()) == set(dom_tree_greedy(udg, u, 3, 1).edges())
        for u in udg.nodes()
    )
    print(f"\nlocality check: {agree}/{udg.num_nodes} distributed trees "
          f"identical to the centralized computation")

    res_k = run_remspan(udg, "kcover", k=1)
    agree_k = sum(
        set(res_k.nodes[u].tree.edges()) == set(dom_tree_kcover(udg, u, 1).edges())
        for u in udg.nodes()
    )
    print(f"                {agree_k}/{udg.num_nodes} for the MPR stars")

    # Steady state: periodic advertisements, then a link failure.
    sim = PeriodicLinkState(udg.copy(), kind="greedy", r=3, beta=1, period=8)

    def fail_first_link(graph):
        graph.remove_edge(*sorted(graph.edges())[0])

    report = sim.stabilization_experiment(warmup=40, change=fail_first_link)
    print(f"\nperiodic regime: link failed at step {report.change_step}; "
          f"spanner re-stabilized at step {report.stabilized_step} "
          f"(bound T+2F = step {report.bound_step}) "
          f"{'OK' if report.within_bound else 'LATE'}")


if __name__ == "__main__":
    main()
