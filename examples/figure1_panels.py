#!/usr/bin/env python
"""Figure 1 of the paper, regenerated panel by panel.

Rebuilds the worked unit-disk-graph example: the input UDG (a), a
(1, 0)-remote-spanner (b), an inclusion-minimal (2, −1)-remote-spanner
exhibiting the extremal 2d−1 stretch (c), and the 2-connecting
(2, −1)-remote-spanner with its two disjoint paths (d).  Every claim the
original caption makes is re-derived and printed with its witnesses.

Run:  python examples/figure1_panels.py
"""

from repro.core import is_remote_spanner, is_k_connecting_remote_spanner
from repro.experiments.figure1 import NAMES, ascii_scene, build_figure1, figure1_points


def name(i: int) -> str:
    return NAMES[i] if i < len(NAMES) else str(i)


def main() -> None:
    fig = build_figure1()
    g = fig.graph
    pts = figure1_points()

    print("(a) the unit disk graph G")
    print(ascii_scene(pts, g))
    print()

    hb = fig.spanner_b.graph
    print(f"(b) a (1,0)-remote-spanner H^b — {hb.num_edges} of {g.num_edges} edges")
    print(ascii_scene(pts, g, hb))
    u, x, d = fig.exact_pair
    assert is_remote_spanner(hb, g, 1.0, 0.0)
    print(f"    caption check: d_{{H^b_{name(u)}}}({name(u)},{name(x)}) = {d} "
          f"= d_G({name(u)},{name(x)})  [exact distances preserved]")
    print()

    hc = fig.graph_c
    print(f"(c) a minimal (2,-1)-remote-spanner H^c — {hc.num_edges} of {g.num_edges} edges")
    print(ascii_scene(pts, g, hc))
    s, t, dg, dh = fig.stretch_pair
    assert is_remote_spanner(hc, g, 2.0, -1.0)
    print(f"    caption check: d_{{H^c_{name(s)}}}({name(s)},{name(t)}) = {dh} "
          f"= 2·d_G({name(s)},{name(t)}) - 1 = 2·{dg}-1  [extremal stretch realized]")
    print()

    hd = fig.spanner_d.graph
    print(f"(d) the 2-connecting (2,-1)-remote-spanner H^d — {hd.num_edges} edges")
    print(ascii_scene(pts, g, hd))
    s2, t2, paths = fig.disjoint_witness
    assert is_k_connecting_remote_spanner(hd, g, 2, 2.0, -1.0)
    pretty = [" -> ".join(name(v) for v in p) for p in paths]
    print(f"    caption check: H^d_{name(s2)} contains two disjoint "
          f"{name(s2)}→{name(t2)} paths: {pretty[0]}  and  {pretty[1]}")


if __name__ == "__main__":
    main()
