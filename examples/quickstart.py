#!/usr/bin/env python
"""Quickstart: build, verify and inspect a remote-spanner in 60 lines.

The scenario of the paper's introduction: a dense wireless-style network
where flooding every link (OSPF-style) is wasteful.  We

1. generate a random unit disk graph (the ad hoc network model),
2. build the exact-distance (1, 0)-remote-spanner of Theorem 2,
3. re-verify the stretch promise with the independent checker,
4. compare advertised links against full link-state flooding.

Run:  python examples/quickstart.py
"""

from repro import build_k_connecting_spanner, is_remote_spanner
from repro.core import remote_stretch_stats
from repro.experiments import largest_component, scaled_udg
from repro.routing import full_link_state_cost, spanner_advertisement_cost


def main() -> None:
    # 1. An ad hoc network: 300 radios, unit range, ~12 expected neighbors.
    g_full, _points = scaled_udg(n=300, target_degree=12.0, seed=42)
    g, _ids = largest_component(g_full)
    print(f"network: {g.num_nodes} nodes, {g.num_edges} links, max degree {g.max_degree()}")

    # 2. Every node picks multipoint relays (Algorithm 4); the union of the
    #    relay stars is a (1, 0)-remote-spanner — exact distances from every
    #    node once its own links are added back.
    rs = build_k_connecting_spanner(g, k=1)
    print(f"remote-spanner: {rs.num_edges} links advertised "
          f"({100 * rs.density(g):.0f}% of the topology)")

    # 3. Verify the promise with the definition-level checker (shares no
    #    code with the construction).
    assert is_remote_spanner(rs.graph, g, alpha=1.0, beta=0.0), "stretch violated!"
    stats = remote_stretch_stats(rs.graph, g)
    print(f"checked {stats.pairs_checked} ordered pairs: "
          f"max stretch {stats.max_ratio:.3f}, "
          f"exact-distance fraction {stats.exact_fraction:.3f}")

    # 4. The economics: links flooded per advertisement period.
    ours = spanner_advertisement_cost(rs)
    ospf = full_link_state_cost(g)
    print(f"advertised link entries per period: {ours.entries_per_period} "
          f"vs {ospf.entries_per_period} for full link state "
          f"({100 * ours.ratio_to(ospf):.0f}%)")


if __name__ == "__main__":
    main()
